"""Exporters: metrics snapshots as JSON files and Prometheus text.

Two formats cover the two consumers:

* **JSON** (:func:`write_bench_json`, :func:`dump_json`) — the structured
  ``BENCH_<name>.json`` artefacts that ``benchmarks/`` writes and later
  perf PRs diff against;
* **Prometheus text** (:func:`to_prometheus`) — the exposition format
  with a ``# HELP``/``# TYPE`` pair on **every** metric family (counters,
  gauges, timer summaries, latency histograms, and the span summary), so
  a scraping deployment needs no adapter and ``promtool check metrics``
  passes. The HELP text always quotes the original dotted metric name
  (``cache.store_hits``), so the name sanitization (dots → underscores)
  round-trips: consumers can map ``repro_cache_store_hits_total`` back to
  the catalogue entry without guessing where the dots were.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Optional, Union

from .registry import Registry, get_registry

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def snapshot(registry: Optional[Registry] = None) -> Dict[str, object]:
    """The registry's current metrics as a plain JSON-ready dict."""
    return (registry or get_registry()).snapshot()


def dump_json(
    path: Union[str, Path],
    *,
    registry: Optional[Registry] = None,
    extra: Optional[Dict[str, object]] = None,
) -> Path:
    """Write the full snapshot (plus caller ``extra`` keys) to ``path``."""
    payload: Dict[str, object] = dict(extra or {})
    payload["metrics"] = snapshot(registry)
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def write_bench_json(
    name: str,
    *,
    directory: Union[str, Path] = ".",
    registry: Optional[Registry] = None,
    extra: Optional[Dict[str, object]] = None,
) -> Path:
    """Write ``BENCH_<name>.json`` under ``directory`` and return its path.

    ``extra`` keys land at the top level next to ``"metrics"`` — put the
    headline numbers (cache hit-rate, nets/sec) there so downstream diffs
    don't need to dig through the span tree.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return dump_json(directory / f"BENCH_{name}.json", registry=registry, extra=extra)


def prom_name(name: str) -> str:
    """The Prometheus family name of a dotted repro metric name.

    Every character outside ``[a-zA-Z0-9_]`` becomes an underscore and
    the ``repro_`` namespace prefix is added: ``cache.store_hits`` →
    ``repro_cache_store_hits``. The mapping is not injective in general
    (``a.b`` and ``a_b`` collide), so the exporter records the original
    name in each family's ``# HELP`` line — that pair is the documented
    round-trip, and ``tests/test_obs_live.py`` holds it as a regression.
    """
    return "repro_" + _NAME_RE.sub("_", name)


_prom_name = prom_name


def _help_line(metric: str, original: str, what: str) -> str:
    """One ``# HELP`` line carrying the original dotted metric name."""
    text = f"repro {what} '{original}'".replace("\\", "\\\\").replace("\n", "\\n")
    return f"# HELP {metric} {text}"


def help_original_name(help_text: str) -> Optional[str]:
    """Recover the dotted metric name quoted in an exporter HELP text."""
    m = re.search(r"'([^']+)'", help_text)
    return m.group(1) if m else None


def _prom_label_value(value: str) -> str:
    """Escape a label value per the exposition format spec.

    Backslash, double quote, and newline are the three characters the
    format requires escaping inside ``label="..."``.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _histogram_lines(
    metric: str, original: str, hist: Dict[str, object]
) -> List[str]:
    """Exposition lines for one serialized latency histogram.

    Buckets are emitted cumulatively with ``le`` upper-bound labels plus
    the mandatory ``+Inf`` bucket, ``_sum``, and ``_count`` — the
    Prometheus histogram contract, checked structurally by
    :func:`repro.obs.live.validate_exposition`.
    """
    lines = [
        _help_line(metric, original, "latency histogram"),
        f"# TYPE {metric} histogram",
    ]
    bounds = [float(b) for b in hist["bounds"]]  # type: ignore[union-attr]
    counts = [int(c) for c in hist["counts"]]  # type: ignore[union-attr]
    cumulative = 0
    for bound, count in zip(bounds, counts[:-1]):
        cumulative += count
        lines.append(f'{metric}_bucket{{le="{bound!r}"}} {cumulative}')
    cumulative += counts[-1]
    lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
    lines.append(f"{metric}_sum {hist['sum']}")
    lines.append(f"{metric}_count {hist['count']}")
    return lines


def to_prometheus(registry: Optional[Registry] = None) -> str:
    """The snapshot in Prometheus text exposition format.

    Counters map directly (with the conventional ``_total`` suffix),
    gauges map directly, timers become summaries (``_count`` / ``_sum``
    plus ``{quantile=...}`` sample lines), the per-timer latency
    histograms become ``histogram`` families with cumulative ``le``
    buckets, and spans form one ``repro_span_seconds`` summary family
    with the span path in an escaped ``path`` label. Every family gets a
    ``# HELP`` line quoting its original dotted name (the sanitization
    round-trip) and a ``# TYPE`` line. Lines are emitted in sorted name
    order per family, so output is deterministic and diff-friendly.
    """
    snap = snapshot(registry)
    lines = []
    for name, value in sorted(snap["counters"].items()):  # type: ignore[union-attr]
        metric = prom_name(name) + "_total"
        lines.append(_help_line(metric, name, "counter"))
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in sorted(snap["gauges"].items()):  # type: ignore[union-attr]
        metric = prom_name(name)
        lines.append(_help_line(metric, name, "gauge"))
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    for name, stat in sorted(snap["timers"].items()):  # type: ignore[union-attr]
        metric = prom_name(name) + "_seconds"
        lines.append(_help_line(metric, name, "timer summary"))
        lines.append(f"# TYPE {metric} summary")
        for q, quantile in (("p50_s", "0.5"), ("p90_s", "0.9"), ("p99_s", "0.99")):
            lines.append(f'{metric}{{quantile="{quantile}"}} {stat[q]}')
        lines.append(f"{metric}_sum {stat['total_s']}")
        lines.append(f"{metric}_count {stat['count']}")
    for name, hist in sorted(snap.get("histograms", {}).items()):  # type: ignore[union-attr]
        lines.extend(_histogram_lines(prom_name(name), name, hist))
    spans = snap["spans"]
    if spans:  # type: ignore[truthy-bool]
        lines.append(
            _help_line("repro_span_seconds", "span", "span-path summary")
        )
        lines.append("# TYPE repro_span_seconds summary")
        for path, stat in sorted(spans.items()):  # type: ignore[union-attr]
            label = _prom_label_value(path)
            lines.append(
                f'repro_span_seconds_sum{{path="{label}"}} {stat["total_s"]}'
            )
            lines.append(
                f'repro_span_seconds_count{{path="{label}"}} {stat["count"]}'
            )
    return "\n".join(lines) + "\n"
