"""ASCII rendering for terminals and doctests.

Small routing trees draw legibly on a character grid: ``S`` source, ``#``
sinks, ``+`` Steiner points, ``-``/``|`` wires. Pareto curves render as a
down-sloping staircase of ``*`` markers.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.pareto import Solution, objectives
from ..routing.embedding import embed_tree
from ..routing.tree import RoutingTree


def tree_ascii(tree: RoutingTree, width: int = 60, height: int = 24) -> str:
    """Character-grid drawing of a routing tree."""
    segments = embed_tree(tree)
    pts = [p for s in segments for p in (s.a, s.b)] or list(tree.points)
    xlo = min(p.x for p in pts)
    xhi = max(p.x for p in pts)
    ylo = min(p.y for p in pts)
    yhi = max(p.y for p in pts)
    xspan = max(xhi - xlo, 1e-9)
    yspan = max(yhi - ylo, 1e-9)

    def cx(x: float) -> int:
        return min(width - 1, round((x - xlo) / xspan * (width - 1)))

    def cy(y: float) -> int:
        return min(height - 1, (height - 1) - round((y - ylo) / yspan * (height - 1)))

    grid = [[" "] * width for _ in range(height)]
    for seg in segments:
        if seg.is_horizontal:
            r = cy(seg.a.y)
            c0, c1 = sorted((cx(seg.a.x), cx(seg.b.x)))
            for c in range(c0, c1 + 1):
                grid[r][c] = "-" if grid[r][c] == " " else "+"
        else:
            c = cx(seg.a.x)
            r0, r1 = sorted((cy(seg.a.y), cy(seg.b.y)))
            for r in range(r0, r1 + 1):
                grid[r][c] = "|" if grid[r][c] == " " else "+"
    n = tree.net.degree
    for i, p in enumerate(tree.points):
        marker = "S" if i == 0 else ("#" if i < n else "+")
        grid[cy(p.y)][cx(p.x)] = marker
    return "\n".join("".join(row).rstrip() for row in grid)


def pareto_ascii(
    front: Sequence[Solution], width: int = 50, height: int = 16
) -> str:
    """Staircase plot of a Pareto set (wirelength →, delay ↑)."""
    pts = objectives(front)
    if not pts:
        return "(empty front)"
    wlo = min(w for w, _ in pts)
    whi = max(w for w, _ in pts)
    dlo = min(d for _, d in pts)
    dhi = max(d for _, d in pts)
    wspan = max(whi - wlo, 1e-9)
    dspan = max(dhi - dlo, 1e-9)
    grid = [[" "] * width for _ in range(height)]
    for w, d in pts:
        c = min(width - 1, round((w - wlo) / wspan * (width - 1)))
        r = min(height - 1, (height - 1) - round((d - dlo) / dspan * (height - 1)))
        grid[r][c] = "*"
    lines = ["".join(row).rstrip() for row in grid]
    lines.append("-" * width)
    lines.append(
        f"w: [{wlo:.1f}, {whi:.1f}]  d: [{dlo:.1f}, {dhi:.1f}]  "
        f"({len(pts)} solutions)"
    )
    return "\n".join(lines)


def front_summary(front: Sequence[Solution]) -> str:
    """One line per solution: index, wirelength, delay."""
    lines: List[str] = []
    for i, (w, d, *_rest) in enumerate(front):
        lines.append(f"  [{i}] w = {w:10.2f}   d = {d:10.2f}")
    return "\n".join(lines)
