"""Delay-aware tree refinement passes.

SALT's post-processing, PD-II's detour-aware Steinerisation, and
PatLabor's local-search cleanup all need the same move: *reattach a
subtree somewhere cheaper without breaking a delay budget*. This module
implements that move on the parent-array representation, plus a
convergence loop around it.

A reattachment candidate is either an existing node or a Steiner point
projected onto an existing edge (splitting it at zero wirelength cost, see
:mod:`repro.routing.attach`). Candidates inside the moving subtree are
excluded — attaching below yourself creates a cycle.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..geometry.bbox import BBox, project_onto
from ..geometry.point import Point, l1
from .tree import RoutingTree


def subtree_nodes(tree: RoutingTree, v: int) -> Set[int]:
    """Node indices of the subtree rooted at ``v`` (``v`` included)."""
    ch = tree.children()
    out = {v}
    stack = [v]
    while stack:
        u = stack.pop()
        for c in ch[u]:
            out.add(c)
            stack.append(c)
    return out


def best_reattachment(
    tree: RoutingTree,
    v: int,
    path_lengths: List[float],
    max_arrival: Optional[float] = None,
    require_cheaper: bool = True,
) -> Optional[Tuple[float, float, int, Optional[int], Point]]:
    """Cheapest reattachment of node ``v`` (with its subtree).

    Returns ``(cost, arrival, node, split_child, attach_point)`` or
    ``None`` when no candidate qualifies. ``arrival`` is the
    source→attach-point→v path length; with ``max_arrival`` set, only
    candidates meeting that budget qualify (the shallow-light constraint).
    With ``require_cheaper`` (default), candidates at least as expensive as
    the current parent edge are rejected — pass ``False`` when the caller
    must rewire regardless of cost (e.g. to restore a delay budget).
    """
    forbidden = subtree_nodes(tree, v)
    pv = tree.points[v]
    current_cost = tree.edge_length(v)
    best: Optional[Tuple[float, float, int, Optional[int], Point]] = None

    def consider(cost: float, arrival: float, node: int,
                 split_child: Optional[int], at: Point) -> None:
        nonlocal best
        if max_arrival is not None and arrival > max_arrival + 1e-12:
            return
        if best is None or (cost, arrival) < (best[0], best[1]):
            best = (cost, arrival, node, split_child, at)

    for u, pu in enumerate(tree.points):
        if u in forbidden:
            continue
        cost = l1(pu, pv)
        consider(cost, path_lengths[u] + cost, u, None, pu)

    for child, parent in tree.edges():
        if child in forbidden or parent in forbidden:
            continue
        a, b = tree.points[child], tree.points[parent]
        box = BBox(min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y))
        q = project_onto(pv, box)
        cost = l1(pv, q)
        # Arrival through the parent side of the split edge.
        arrival = path_lengths[parent] + l1(tree.points[parent], q) + cost
        if q != a and q != b:
            consider(cost, arrival, parent, child, q)

    if best is None:
        return None
    if require_cheaper and best[0] >= current_cost - 1e-12:
        return None
    return best


def apply_reattachment(
    tree: RoutingTree,
    v: int,
    node: int,
    split_child: Optional[int],
    attach_point: Point,
) -> None:
    """Rewire ``v`` under the chosen attachment, splitting an edge if asked."""
    target = node
    if split_child is not None:
        parent = tree.parent[split_child]
        steiner = len(tree.points)
        tree.points.append(attach_point)
        tree.parent.append(parent)
        tree.parent[split_child] = steiner
        target = steiner
    tree.parent[v] = target
    tree._invalidate()


def wirelength_refine(
    tree: RoutingTree,
    delay_cap: Optional[float] = None,
    max_passes: int = 4,
) -> RoutingTree:
    """Repeatedly reattach subtrees to shed wirelength.

    With ``delay_cap`` set, a move is kept only if the whole tree's delay
    stays within the cap (moves are applied tentatively and reverted
    otherwise). Terminates after ``max_passes`` sweeps or at a fixed point.
    Returns a compacted copy; the input is not mutated.
    """
    work = tree.copy()
    for _ in range(max_passes):
        improved = False
        pls = work.path_lengths()
        for v in range(1, len(work.points)):
            if v >= len(work.points):
                break
            cand = best_reattachment(work, v, pls)
            if cand is None:
                continue
            cost, _, node, split_child, at = cand
            snapshot = (list(work.points), list(work.parent))
            apply_reattachment(work, v, node, split_child, at)
            if delay_cap is not None and work.delay() > delay_cap + 1e-9:
                work.points, work.parent = snapshot
                work._invalidate()
                continue
            improved = True
            pls = work.path_lengths()
        if not improved:
            break
    return work.compacted()


def per_sink_shallow_refine(
    tree: RoutingTree, epsilon: float, max_passes: int = 4
) -> RoutingTree:
    """Shed wirelength while keeping every sink ``(1+epsilon)``-shallow.

    The per-sink budget ``(1+epsilon) * ||r - sink||`` is the SALT
    invariant; moves violating any sink's budget are reverted.
    """
    work = tree.copy()
    src = work.net.source
    budgets = [
        (1.0 + epsilon) * l1(src, s) for s in work.net.sinks
    ]

    def within_budget() -> bool:
        return all(
            pl <= b + 1e-9 for pl, b in zip(work.sink_delays(), budgets)
        )

    for _ in range(max_passes):
        improved = False
        pls = work.path_lengths()
        for v in range(1, len(work.points)):
            cand = best_reattachment(work, v, pls)
            if cand is None:
                continue
            _, _, node, split_child, at = cand
            snapshot = (list(work.points), list(work.parent))
            apply_reattachment(work, v, node, split_child, at)
            if not within_budget():
                work.points, work.parent = snapshot
                work._invalidate()
                continue
            improved = True
            pls = work.path_lengths()
        if not improved:
            break
    return work.compacted()
