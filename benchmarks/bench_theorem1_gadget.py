"""Theorem 1 / Fig. 4 — exponential Pareto frontiers exist.

The paper constructs 11-pin S-gadgets; this reproduction uses the compact
5-pin gadget family of :mod:`repro.analysis.theorem1` (verifiable at
Python scale). Regenerated evidence:

* all ``2^m`` gadget-choice trees are mutually incomparable (m <= 6),
* exact Pareto-DW confirms every combination is frontier-optimal for
  m = 1 and m = 2 (larger m is out of exact-DW reach in pure Python).

Timed kernel: exact DW on the m = 2 instance (11 pins).
"""

from repro.analysis.theorem1 import (
    all_combination_objectives,
    exponential_instance,
    verify_antichain,
)
from repro.core.pareto_dw import pareto_frontier
from repro.eval.reporting import format_table

from conftest import write_artifact


def test_theorem1(benchmark):
    rows = []
    for m in (1, 2, 3, 4, 5, 6):
        objs = all_combination_objectives(m)
        antichain = verify_antichain(objs)
        if m <= 2:
            frontier = pareto_frontier(exponential_instance(m), max_degree=12)
            frontier_size = len(frontier)
            rounded = {(round(w, 6), round(d, 6)) for w, d in frontier}
            all_on = all(
                (round(w, 6), round(d, 6)) in rounded for w, d in objs
            )
        else:
            frontier_size, all_on = None, None
        rows.append(
            [
                m,
                5 * m + 1,
                2**m,
                "yes" if antichain else "NO",
                frontier_size if frontier_size is not None else "(n/a)",
                {True: "yes", False: "NO", None: "(n/a)"}[all_on],
            ]
        )
        assert antichain, f"witness set for m={m} is not an antichain"
        if m <= 2:
            assert all_on, f"some m={m} combination is off the frontier"
            assert frontier_size >= 2**m

    table = format_table(
        ["m", "pins", "2^m", "antichain", "|frontier| (exact)", "all 2^m on frontier"],
        rows,
        title="Theorem 1 — exponential frontier gadget family",
    )
    write_artifact("theorem1_gadget.txt", table)

    net2 = exponential_instance(2)
    benchmark(lambda: pareto_frontier(net2, max_degree=12))
