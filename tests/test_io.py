"""Tests for on-disk formats: net files, LUT JSON, result JSONL."""

import random

import pytest

from repro.core.pareto import Solution
from repro.eval.metrics import NetComparison
from repro.exceptions import SerializationError
from repro.geometry.net import Net, random_net
from repro.io.lut_io import load_lut, lut_file_size, save_lut
from repro.io.nets_format import load_nets, save_nets
from repro.io.results_io import append_results, load_results


class TestNetsFormat:
    def test_roundtrip(self, tmp_path):
        rng = random.Random(1)
        nets = [random_net(d, rng=rng, name=f"n{d}") for d in (2, 5, 9)]
        path = tmp_path / "w.nets"
        assert save_nets(nets, path) == 3
        loaded = load_nets(path)
        assert [n.key() for n in loaded] == [n.key() for n in nets]
        assert [n.name for n in loaded] == ["n2", "n5", "n9"]

    def test_float_precision_preserved(self, tmp_path):
        net = Net.from_points((0.1234567890123, 0.3), [(1e-9, 2e9)])
        path = tmp_path / "p.nets"
        save_nets([net], path)
        loaded = load_nets(path)[0]
        assert loaded.key() == net.key()

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "c.nets"
        path.write_text(
            "# a comment\nnet x 2\nsource 0 0\nsink 1 1\n\n# tail comment\n"
        )
        nets = load_nets(path)
        assert len(nets) == 1
        assert nets[0].name == "x"

    def test_malformed_raises(self, tmp_path):
        path = tmp_path / "bad.nets"
        path.write_text("net x 2\nsource 0\n")
        with pytest.raises(SerializationError):
            load_nets(path)

    def test_unknown_directive_raises(self, tmp_path):
        path = tmp_path / "bad2.nets"
        path.write_text("wire 0 0 1 1\n")
        with pytest.raises(SerializationError):
            load_nets(path)

    def test_sinks_without_source_raises(self, tmp_path):
        path = tmp_path / "bad3.nets"
        path.write_text("net x 2\nsink 1 1\n")
        with pytest.raises(SerializationError):
            load_nets(path)


class TestLutIo:
    def test_roundtrip_preserves_lookups(self, lut45, tmp_path, assert_fronts_equal):
        path = tmp_path / "lut.json"
        save_lut(lut45, path)
        assert lut_file_size(path) > 0
        loaded = load_lut(path)
        assert loaded.degrees == lut45.degrees
        rng = random.Random(2)
        for _ in range(5):
            net = random_net(5, rng=rng)
            assert_fronts_equal(loaded.frontier(net), lut45.frontier(net))

    def test_stats_roundtrip(self, lut45, tmp_path):
        path = tmp_path / "lut.json"
        save_lut(lut45, path)
        loaded = load_lut(path)
        assert loaded.stats[4].num_index == lut45.stats[4].num_index

    def test_bad_file_raises(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("not json at all {")
        with pytest.raises(SerializationError):
            load_lut(path)

    def test_version_check(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text('{"version": 99}')
        with pytest.raises(SerializationError):
            load_lut(path)


class TestResultsIo:
    def _row(self) -> NetComparison:
        return NetComparison(
            net_name="n1",
            degree=5,
            frontier=[(1.0, 2.0, None)],
            methods={"m": [(1.0, 2.0, None)]},
            runtimes={"m": 0.25},
        )

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "r.jsonl"
        assert append_results([self._row()], path) == 1
        rows = load_results(path)
        assert len(rows) == 1
        assert rows[0].net_name == "n1"
        assert rows[0].frontier == [(1.0, 2.0, None)]
        assert rows[0].runtimes == {"m": 0.25}

    def test_append_accumulates(self, tmp_path):
        path = tmp_path / "r.jsonl"
        append_results([self._row()], path)
        append_results([self._row()], path)
        assert len(load_results(path)) == 2

    def test_payloads_dropped(self, tmp_path):
        row = self._row()
        row.methods["m"] = [(1.0, 2.0, object())]
        path = tmp_path / "r.jsonl"
        append_results([row], path)
        assert load_results(path)[0].methods["m"][0][2] is None

    def test_roundtrip_from_real_comparison(self, tmp_path):
        """Persist actual ``compare_on_net`` output and get back every
        objective pair, method name, and runtime — bit-exact floats."""
        from repro.core.patlabor import PatLabor
        from repro.eval.runner import compare_on_net

        rng = random.Random(42)
        nets = [random_net(d, rng=rng, name=f"rt{d}") for d in (4, 6)]
        methods = {
            "patlabor": lambda n: PatLabor().route(n),
        }
        rows = [
            compare_on_net(net, methods, compute_exact=True) for net in nets
        ]
        path = tmp_path / "real.jsonl"
        assert append_results(rows, path) == len(rows)
        loaded = load_results(path)
        assert [r.net_name for r in loaded] == [r.net_name for r in rows]
        for before, after in zip(rows, loaded):
            assert after.degree == before.degree
            assert set(after.methods) == set(before.methods)
            # JSON round-trips IEEE doubles exactly: objectives bit-equal.
            assert [(w, d) for w, d, _ in after.frontier] == [
                (w, d) for w, d, _ in before.frontier
            ]
            for m in before.methods:
                assert [(w, d) for w, d, _ in after.methods[m]] == [
                    (w, d) for w, d, _ in before.methods[m]
                ]
            assert after.runtimes == before.runtimes

    def test_roundtrip_empty_collections(self, tmp_path):
        row = NetComparison(
            net_name="empty", degree=2, frontier=[], methods={}, runtimes={}
        )
        path = tmp_path / "e.jsonl"
        append_results([row], path)
        (loaded,) = load_results(path)
        assert loaded.frontier == [] and loaded.methods == {}
        assert loaded.runtimes == {}

    def test_load_skips_blank_lines(self, tmp_path):
        path = tmp_path / "gap.jsonl"
        append_results([self._row()], path)
        with open(path, "a", encoding="utf-8") as fp:
            fp.write("\n\n")
        append_results([self._row()], path)
        assert len(load_results(path)) == 2
