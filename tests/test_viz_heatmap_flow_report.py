"""Tests for the congestion heatmap and flow reporting."""

import random

import pytest

from repro.baselines.rsmt import rsmt
from repro.congestion.model import CongestionMap
from repro.eval.design_flow import DesignFlowConfig, route_design
from repro.eval.flow_report import render_flow_detail, render_flow_summary
from repro.geometry.net import random_net
from repro.viz.heatmap import _heat_color, congestion_heatmap_svg


class TestHeatColor:
    def test_extremes(self):
        assert _heat_color(0.0) == "rgb(255,255,255)"
        assert _heat_color(1.0) == "rgb(214,39,40)"

    def test_clamping(self):
        assert _heat_color(-1.0) == _heat_color(0.0)
        assert _heat_color(5.0) == _heat_color(1.0)

    def test_midpoint_is_yellowish(self):
        assert _heat_color(0.5) == "rgb(255,220,80)"


class TestHeatmapSvg:
    def _map(self):
        cmap = CongestionMap.uniform(0, 0, 100, 100, 4, 4)
        cmap.weights[1][1] = 9.0
        return cmap

    def test_well_formed(self):
        svg = congestion_heatmap_svg(self._map(), title="demand")
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert svg.count("<rect") >= 16 + 1  # cells + background
        assert "demand" in svg

    def test_tree_overlay(self):
        net = random_net(5, rng=random.Random(1), span=100.0)
        tree = rsmt(net)
        svg = congestion_heatmap_svg(self._map(), trees=[tree])
        assert "<line" in svg

    def test_vmax_override(self):
        svg = congestion_heatmap_svg(self._map(), vmax=100.0)
        assert "max 100.0" in svg


class TestFlowReport:
    def _results(self):
        rng = random.Random(5)
        nets = [
            random_net(rng.choice((4, 5)), rng=rng, span=500.0, name=f"r{i}")
            for i in range(4)
        ]
        config = DesignFlowConfig(span=500.0, cells=8)
        return {
            s: route_design(nets, strategy=s, config=config)
            for s in ("pareto", "rsmt")
        }

    def test_summary_renders_all_strategies(self):
        out = render_flow_summary(self._results())
        assert "pareto" in out and "rsmt" in out
        assert "overflow" in out

    def test_detail_limits_rows(self):
        results = self._results()
        out = render_flow_detail(results["pareto"], limit=2)
        assert "2 of 4 nets" in out


class TestOveruseHeatmapSvg:
    def _grid(self):
        pytest.importorskip("numpy")
        from repro.congestion.model import CapacityGrid
        from repro.geometry.point import Point
        from repro.routing.embedding import Segment

        grid = CapacityGrid.uniform(0, 0, 100, 100, 4, 4, capacity=10.0)
        # Push one cell over capacity.
        seg = Segment(Point(0, 5), Point(25, 5))
        grid.commit(*grid.rasterize_segment(seg)[:2])
        return grid

    def test_well_formed_and_marks_overuse(self):
        from repro.viz.heatmap import overuse_heatmap_svg

        svg = overuse_heatmap_svg(self._grid(), title="after pass 3")
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert svg.count("<rect") >= 16 + 1
        assert "after pass 3" in svg and "1 overused" in svg
        # Overused cells are outlined in black, the rest in grey.
        assert 'stroke="#000"' in svg and 'stroke="#ddd"' in svg

    def test_tree_overlay_and_vmax(self):
        from repro.viz.heatmap import overuse_heatmap_svg

        net = random_net(4, rng=random.Random(9), span=100.0)
        svg = overuse_heatmap_svg(
            self._grid(), trees=[rsmt(net)], vmax=4.0
        )
        assert "<line" in svg
        assert "peak util 4.00" in svg

    def test_infinite_capacity_renders_cold(self):
        pytest.importorskip("numpy")
        from repro.congestion.model import CapacityGrid
        from repro.viz.heatmap import overuse_heatmap_svg

        grid = CapacityGrid.uniform(0, 0, 100, 100, 4, 4)
        svg = overuse_heatmap_svg(grid)
        assert "0 overused" in svg
