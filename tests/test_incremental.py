"""Incremental / ECO engine: deltas, state reuse, exactness, rip-up.

The load-bearing property here is the exactness contract: an incremental
solve through :class:`~repro.incremental.engine.IncrementalRouter` must
be **bit-identical** to a cold full re-route of the edited net whenever
the edit lands on an exact tier (``closed_form`` / ``lut`` / ``dw`` /
``cache``) — warm starts may only change *how fast* the answer arrives,
never the answer. ``local_search`` is heuristic, so only solution
quality is asserted there.
"""

import dataclasses
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.frontier_array import front_to_arrays
from repro.core.pareto_dw import (
    DWState,
    dw_signature,
    pareto_dw,
    pareto_dw_with_state,
)
from repro.engine import EngineSpec, build_engine
from repro.exceptions import (
    InvalidNetError,
    ProtocolVersionError,
    SerializationError,
)
from repro.geometry.net import Net, random_net
from repro.incremental import (
    EXACT_TIERS,
    IncrementalRouter,
    NetDelta,
    adapt_tree,
    apply_delta,
    delta_from_payload,
    delta_to_payload,
    format_delta,
    grid_preserving_move,
    load_deltas,
    parse_deltas,
    perturb_nets,
    save_deltas,
)
from repro.routing.tree import RoutingTree
from repro.serve.protocol import PROTOCOL_VERSION, check_version


def _objectives(front):
    return [(w, d) for w, d, _t in front]


def _fresh_engine(**kwargs):
    """A cold engine (no shared caches with any other instance)."""
    return build_engine(EngineSpec(router="patlabor", **kwargs))


def _lattice_net(name="lattice"):
    """A boundary-lattice net with one vacancy.

    Every pin sits on the 4x3 Hanan lattice's boundary, so moving a sink
    onto the vacancy keeps the coordinate lines, the Lemma-2 survivors,
    and the Lemma-4 boundary flag — i.e. the DW signature — unchanged,
    guaranteeing the warm path has subset fronts to reuse.
    """
    xs, ys = (0.0, 333.0, 666.0, 1000.0), (0.0, 500.0, 1000.0)
    boundary = [
        (x, y)
        for x in xs
        for y in ys
        if x in (xs[0], xs[-1]) or y in (ys[0], ys[-1])
    ]
    source, vacancy = (0.0, 0.0), (666.0, 0.0)
    sinks = [p for p in boundary if p not in (source, vacancy)][:7]
    return Net.from_points(source, sinks, name=name)


# ------------------------------------------------------------- deltas


class TestNetDelta:
    def test_replay_format_round_trip(self):
        deltas = [
            NetDelta("move", net="a", sink_index=2, point=(1.5, 2.25)),
            NetDelta("add", net="b", point=(0.1, 9.0)),
            NetDelta("remove", net="c", sink_index=0),
            NetDelta("source", net="d", point=(3.0, 4.0)),
            NetDelta(
                "blockage", region=(0.0, 0.0, 10.0, 10.0), scale=0.25
            ),
        ]
        text = "".join(format_delta(d) + "\n" for d in deltas)
        import io

        assert list(parse_deltas(io.StringIO(text))) == deltas

    def test_file_round_trip(self, tmp_path):
        deltas = perturb_nets(
            [random_net(6, rng=random.Random(1), name="n")],
            seed=2,
            kind="move",
            count=4,
        )
        path = tmp_path / "stream.deltas"
        assert save_deltas(deltas, path) == 4
        assert load_deltas(path) == deltas

    def test_comments_and_blanks_ignored(self):
        import io

        text = "# header\n\nremove n 1\n  # indented comment\n"
        assert list(parse_deltas(io.StringIO(text))) == [
            NetDelta("remove", net="n", sink_index=1)
        ]

    def test_wire_codec_round_trip(self):
        for delta in (
            NetDelta("move", net="a", sink_index=1, point=(7.0, 8.0)),
            NetDelta("blockage", region=(1.0, 2.0, 3.0, 4.0), scale=0.0),
        ):
            assert delta_from_payload(delta_to_payload(delta)) == delta

    def test_malformed_payload_raises(self):
        with pytest.raises(SerializationError):
            delta_from_payload({"no": "kind"})
        with pytest.raises(SerializationError):
            delta_from_payload({"kind": "move", "net": "a", "point": [1]})
        with pytest.raises(SerializationError):
            delta_from_payload({"kind": "teleport", "net": "a"})

    def test_validation(self):
        with pytest.raises(SerializationError):
            NetDelta("move", net="a", sink_index=0)  # no point
        with pytest.raises(SerializationError):
            NetDelta("move", net="a", point=(0.0, 0.0))  # no index
        with pytest.raises(SerializationError):
            NetDelta("add", point=(0.0, 0.0))  # no net
        with pytest.raises(SerializationError):
            NetDelta("blockage", scale=0.5)  # no region

    def test_immutable_and_hashable(self):
        delta = NetDelta("remove", net="a", sink_index=1)
        with pytest.raises(AttributeError):
            delta.net = "b"
        assert delta in {NetDelta("remove", net="a", sink_index=1)}

    def test_apply_delta_semantics(self):
        net = Net.from_points((0, 0), [(10, 0), (0, 10)], name="n")
        moved = apply_delta(
            net, NetDelta("move", net="n", sink_index=0, point=(5.0, 5.0))
        )
        assert (moved.sinks[0].x, moved.sinks[0].y) == (5.0, 5.0)
        grown = apply_delta(net, NetDelta("add", net="n", point=(3.0, 4.0)))
        assert grown.degree == net.degree + 1
        shrunk = apply_delta(grown, NetDelta("remove", net="n", sink_index=2))
        assert shrunk.pins == net.pins
        rerooted = apply_delta(
            net, NetDelta("source", net="n", point=(1.0, 1.0))
        )
        assert (rerooted.source.x, rerooted.source.y) == (1.0, 1.0)
        blocked = apply_delta(
            net, NetDelta("blockage", region=(0, 0, 1, 1), scale=0.0)
        )
        assert blocked is net

    def test_apply_delta_out_of_range(self):
        net = Net.from_points((0, 0), [(10, 0)], name="n")
        with pytest.raises(SerializationError):
            apply_delta(
                net, NetDelta("move", net="n", sink_index=5, point=(1.0, 1.0))
            )

    def test_perturb_deterministic_and_replayable(self):
        rng = random.Random(11)
        nets = [random_net(7, rng=rng, name=f"p{i}") for i in range(4)]
        a = perturb_nets(nets, seed=5, kind="move", count=10)
        b = perturb_nets(nets, seed=5, kind="move", count=10)
        assert a == b
        # The stream replays in order without tripping Net validation.
        current = {n.name: n for n in nets}
        for delta in a:
            current[delta.net] = apply_delta(current[delta.net], delta)

    def test_perturb_requires_unique_names(self):
        rng = random.Random(1)
        nets = [random_net(5, rng=rng, name="dup") for _ in range(2)]
        with pytest.raises(SerializationError):
            perturb_nets(nets, seed=1)

    def test_grid_preserving_move_preserves_signature(self):
        net = _lattice_net()
        delta = grid_preserving_move(net, random.Random(8))
        assert delta is not None
        assert dw_signature(apply_delta(net, delta)) == dw_signature(net)


# ------------------------------------------------------- DW state reuse


class TestDWStateReuse:
    def test_warm_solve_bit_identical_with_reuse(self):
        net = _lattice_net()
        cold, state, reuse0 = pareto_dw_with_state(net)
        assert isinstance(state, DWState)
        assert reuse0.reused_masks == 0
        delta = grid_preserving_move(net, random.Random(8))
        assert delta is not None
        edited = apply_delta(net, delta)
        warm, _state2, reuse = pareto_dw_with_state(edited, state=state)
        assert reuse.reused_masks > 0
        reference = pareto_dw(edited)
        assert warm == reference  # trees included — bit identical

    def test_warm_solve_array_parity(self):
        net = _lattice_net("parity")
        _cold, state, _r = pareto_dw_with_state(net)
        delta = grid_preserving_move(net, random.Random(3))
        assert delta is not None
        edited = apply_delta(net, delta)
        warm, _s, _r2 = pareto_dw_with_state(edited, state=state)
        import numpy as np

        warm_w, warm_d = front_to_arrays(warm)[:2]
        ref_w, ref_d = front_to_arrays(pareto_dw(edited))[:2]
        assert np.array_equal(warm_w, ref_w)
        assert np.array_equal(warm_d, ref_d)

    def test_signature_mismatch_means_no_reuse(self):
        net = _lattice_net("off-grid")
        _cold, state, _r = pareto_dw_with_state(net)
        # A move off the lattice adds a coordinate line: full recompute.
        edited = apply_delta(
            net,
            NetDelta("move", net=net.name, sink_index=0, point=(123.0, 77.0)),
        )
        warm, _s, reuse = pareto_dw_with_state(edited, state=state)
        assert reuse.reused_masks == 0
        assert warm == pareto_dw(edited)


# -------------------------------------------------- incremental engine


class TestIncrementalRouter:
    def _engine(self):
        return build_engine(
            EngineSpec(router="patlabor", cache="symmetry", incremental=True)
        )

    def test_capabilities_flag(self):
        assert self._engine().capabilities.incremental is True
        assert _fresh_engine().capabilities.incremental is False

    def test_unknown_net_raises(self):
        engine = self._engine()
        with pytest.raises(InvalidNetError):
            engine.apply_delta(
                NetDelta("move", net="ghost", sink_index=0, point=(1.0, 1.0))
            )

    def test_blockage_is_noop(self):
        engine = self._engine()
        result = engine.apply_delta(
            NetDelta("blockage", region=(0, 0, 1, 1), scale=0.5)
        )
        assert result.tier == "unchanged" and result.net is None

    def test_session_tracking_and_lru(self):
        inner = _fresh_engine()
        engine = IncrementalRouter(inner, max_sessions=2)
        rng = random.Random(0)
        nets = [random_net(5, rng=rng, name=f"s{i}") for i in range(3)]
        for net in nets:
            engine.route(net)
        assert engine.num_sessions == 2
        assert engine.session_net("s0") is None  # evicted
        assert engine.session_net("s2") == nets[2]
        engine.forget("s2")
        assert engine.session_net("s2") is None

    def test_stream_bit_identical_to_cold(self):
        """20 mixed edits; every exact-tier result equals a cold re-route."""
        rng = random.Random(42)
        nets = [random_net(4 + i % 5, rng=rng, name=f"n{i}") for i in range(5)]
        engine = self._engine()
        for net in nets:
            engine.route(net)
        current = {n.name: n for n in nets}
        checked_exact = 0
        for seed, kind in ((1, "move"), (2, "add"), (3, "remove")):
            for delta in perturb_nets(
                list(current.values()), seed=seed, kind=kind, count=5
            ):
                result = engine.apply_delta(delta)
                current[delta.net] = apply_delta(current[delta.net], delta)
                cold_front = _fresh_engine().route(current[delta.net])
                if result.tier in EXACT_TIERS:
                    checked_exact += 1
                    assert _objectives(result.front) == _objectives(
                        cold_front
                    ), f"{delta!r} via {result.tier}"
                else:
                    best = min(w for w, _d, _t in result.front)
                    cold_best = min(w for w, _d, _t in cold_front)
                    assert best <= cold_best * 1.10
        assert checked_exact > 0

    def test_dw_reuse_on_lattice_stream(self):
        """Repeat grid-preserving edits reuse retained subset fronts."""
        net = _lattice_net("warm")
        engine = self._engine()
        engine.route(net)
        rng = random.Random(9)
        current = net
        saw_reuse = False
        for _ in range(3):
            delta = grid_preserving_move(current, rng)
            assert delta is not None
            result = engine.apply_delta(delta)
            current = apply_delta(current, delta)
            assert result.tier == "dw"
            assert _objectives(result.front) == _objectives(
                _fresh_engine().route(current)
            )
            saw_reuse = saw_reuse or result.reused_masks > 0
        assert saw_reuse

    def test_cache_short_circuit(self):
        """An edit that undoes the previous one is served from cache."""
        net = _lattice_net("undo")
        engine = self._engine()
        engine.route(net)
        delta = grid_preserving_move(net, random.Random(2))
        assert delta is not None
        engine.apply_delta(delta)
        old = (net.sinks[delta.sink_index].x, net.sinks[delta.sink_index].y)
        undo = NetDelta(
            "move", net=net.name, sink_index=delta.sink_index, point=old
        )
        result = engine.apply_delta(undo)
        assert result.cache_hit and result.tier == "cache"
        assert _objectives(result.front) == _objectives(
            _fresh_engine().route(net)
        )

    def test_local_search_warm_start_quality(self):
        """Above-lambda edits warm-start local search; quality must hold."""
        rng = random.Random(7)
        net = random_net(11, rng=rng, name="big")
        engine = self._engine()
        engine.route(net)
        delta = perturb_nets([net], seed=1, kind="move", count=1)[0]
        result = engine.apply_delta(delta)
        assert result.tier == "local_search"
        edited = apply_delta(net, delta)
        cold = _fresh_engine().route(edited)
        best = min(w for w, _d, _t in result.front)
        cold_best = min(w for w, _d, _t in cold)
        assert best <= cold_best * 1.10


class TestAdaptTree:
    def _tree(self, net):
        return _fresh_engine().route(net)[0][2]

    def test_each_kind_yields_valid_tree(self):
        net = random_net(7, rng=random.Random(3), name="t")
        tree = self._tree(net)
        cases = [
            NetDelta("move", net="t", sink_index=1, point=(401.0, 17.0)),
            NetDelta("add", net="t", point=(500.0, 500.0)),
            NetDelta("remove", net="t", sink_index=len(net.sinks) - 1),
            NetDelta("source", net="t", point=(900.0, 900.0)),
        ]
        for delta in cases:
            edited = apply_delta(net, delta)
            adapted = adapt_tree(tree, edited, delta)
            assert isinstance(adapted, RoutingTree)
            assert adapted.net == edited
            assert adapted.wirelength() > 0.0


# -------------------------------------------------- negotiation rip-up


class TestNegotiationIncremental:
    def _scenario(self):
        from repro.congestion.negotiate import (
            NegotiatedRouter,
            NegotiatorConfig,
            Scenario,
        )

        scenario = Scenario.random(nets=60, cells=8, span=1000.0, seed=7)
        config = NegotiatorConfig(max_iterations=40)
        return NegotiatedRouter(scenario, config), scenario

    def test_move_converges_with_frozen_background(self):
        router, scenario = self._scenario()
        previous = router.run()
        assert previous.converged and previous.committed is not None
        delta = scenario.perturb(seed=21, kind="move", count=1)[0]
        result = router.run_incremental(previous, delta)
        assert result.converged
        assert result.final_overuse == 0.0
        # The edited net's chosen tree is for the edited geometry.
        edited = apply_delta(
            next(n for n in scenario.nets if n.name == delta.net), delta
        )
        assert any(n.name == delta.net and n == edited for n in scenario.nets)

    def test_add_and_mild_blockage_converge(self):
        router, scenario = self._scenario()
        previous = router.run()
        add = scenario.perturb(seed=22, kind="add", count=1)[0]
        mid = router.run_incremental(previous, add)
        assert mid.converged
        blockage = scenario.perturb(
            seed=23, kind="blockage", count=1, blockage_scale=0.9
        )[0]
        result = router.run_incremental(mid, blockage)
        assert result.converged

    def test_requires_committed_state(self):
        router, scenario = self._scenario()
        previous = router.run()
        stripped = dataclasses.replace(previous, committed=None)
        with pytest.raises(ValueError):
            router.run_incremental(
                stripped, scenario.perturb(seed=1, kind="move", count=1)[0]
            )

    def test_unknown_net_raises(self):
        router, _scenario = self._scenario()
        previous = router.run()
        with pytest.raises(ValueError):
            router.run_incremental(
                previous,
                NetDelta("move", net="ghost", sink_index=0, point=(1.0, 1.0)),
            )


# ------------------------------------------------------ wire protocol


class TestProtocolVersion:
    def test_eco_needs_v2(self):
        check_version({"op": "eco", "v": PROTOCOL_VERSION}, "eco")
        with pytest.raises(ProtocolVersionError):
            check_version({"op": "eco"}, "eco")  # unversioned = v1
        with pytest.raises(ProtocolVersionError):
            check_version({"op": "eco", "v": 1}, "eco")

    def test_bad_version_type(self):
        with pytest.raises(ProtocolVersionError):
            check_version({"op": "eco", "v": "two"}, "eco")

    def test_ungated_ops_accept_any_version(self):
        for op in ("ping", "route", "stats", "shutdown"):
            check_version({"op": op}, op)
            check_version({"op": op, "v": 99}, op)


# ---------------------------------------------------------- cache API


class TestCacheLookupSeed:
    def test_lookup_miss_then_seed_then_hit(self):
        engine = _fresh_engine(cache="symmetry")
        net = random_net(6, rng=random.Random(5), name="c")
        assert engine.lookup(net) is None
        front = engine.route(net)
        assert engine.lookup(net) == front
        other = random_net(6, rng=random.Random(6), name="c2")
        engine.seed(other, front)
        assert engine.lookup(other) == front


# --------------------------------------------------------- properties


slow = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        HealthCheck.large_base_example,
        HealthCheck.filter_too_much,
    ],
)

coords = st.integers(0, 30)


@st.composite
def small_nets(draw, min_degree=4, max_degree=8):
    n = draw(st.integers(min_degree, max_degree))
    pts = set()
    while len(pts) < n:
        pts.add((draw(coords), draw(coords)))
    ordered = sorted(pts)
    rng = random.Random(draw(st.integers(0, 10**6)))
    rng.shuffle(ordered)
    return Net.from_points(ordered[0], ordered[1:], name="hyp")


class TestIncrementalProperties:
    @slow
    @given(
        small_nets(),
        st.integers(0, 10**6),
        st.lists(
            st.sampled_from(["move", "add", "remove"]), min_size=1, max_size=3
        ),
    )
    def test_random_streams_match_cold_reroutes(self, net, seed, kinds):
        """Any delta stream: exact tiers bit-identical, heuristic close."""
        engine = build_engine(
            EngineSpec(router="patlabor", cache="symmetry", incremental=True)
        )
        engine.route(net)
        current = net
        for offset, kind in enumerate(kinds):
            if kind == "remove" and current.degree <= 2:
                continue
            delta = perturb_nets(
                [current], seed=seed + offset, kind=kind, count=1, span=30.0
            )[0]
            result = engine.apply_delta(delta)
            current = apply_delta(current, delta)
            cold = _fresh_engine().route(current)
            if result.tier in EXACT_TIERS:
                assert _objectives(result.front) == _objectives(cold)
            else:
                best = min(w for w, _d, _t in result.front)
                assert best <= min(w for w, _d, _t in cold) * 1.10
