"""Shared infrastructure for the paper-artefact benchmarks.

Every benchmark regenerates one table or figure of the paper at reduced
scale (pure Python vs the authors' C++ on 16 cores; scaling factors are
stated in each module docstring and recorded in EXPERIMENTS.md). Rendered
artefacts are written to ``benchmarks/results/`` and echoed to stdout.

Heavy shared work — routing the small-net comparison pool — happens once
in session fixtures.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.eval.benchmarks import Iccad15LikeSuite
from repro.eval.runner import compare_on_nets, default_methods, fig7_normalizers

RESULTS_DIR = Path(__file__).parent / "results"

#: Nets per degree for the small-net experiments (paper: the full 904,915
#: nets of the ICCAD-15 benchmark; scaled ~1/4000 here).
SMALL_PER_DEGREE = {4: 30, 5: 30, 6: 24, 7: 18, 8: 10, 9: 6}


def write_artifact(name: str, content: str) -> Path:
    """Persist a rendered table/figure and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(content + "\n", encoding="utf-8")
    print(f"\n{content}\n[artifact written to {path}]")
    return path


@pytest.fixture(scope="session")
def suite() -> Iccad15LikeSuite:
    return Iccad15LikeSuite(seed=2015)


@pytest.fixture(scope="session")
def small_nets(suite):
    """The small-degree comparison pool, flattened."""
    nets = []
    for degree, count in SMALL_PER_DEGREE.items():
        nets.extend(suite.small_nets(degrees=(degree,), per_degree=count)[degree])
    return nets


@pytest.fixture(scope="session")
def small_comparisons(small_nets):
    """PatLabor / SALT / YSD + exact frontier on every small net.

    This is the shared input of Tables III & IV and Fig. 7(a); routing
    ~120 nets takes a couple of minutes in pure Python.
    """
    return compare_on_nets(small_nets, default_methods())


@pytest.fixture(scope="session")
def small_normalizers(small_nets):
    return fig7_normalizers(small_nets)
