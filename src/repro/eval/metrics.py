"""Pareto-quality metrics for method comparison (Tables III/IV, Fig. 7).

Definitions follow the paper:

* a method is **non-optimal on a net** when none of its solutions lies on
  the exact Pareto frontier (Table III counts the ratio of such nets);
* Table IV counts, per degree, the total number of frontier points each
  method attains;
* Fig. 7 averages normalised Pareto curves over nets: each net's
  objectives are divided by ``w(FLUTE)`` and ``d(CL)``, the curve is
  sampled as "best delay within a wirelength budget" on a fixed budget
  grid, and budgets are averaged across nets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.pareto import (
    Solution,
    attains_frontier,
    count_on_frontier,
    normalized_front,
    objectives,
)

#: Relative tolerance for "same objective value" when matching frontier
#: points computed by different code paths (float summation order).
REL_TOL = 1e-6


def _match_tol(frontier: Sequence[Solution]) -> float:
    span = max((max(abs(w), abs(d)) for w, d, *_ in frontier), default=1.0)
    return max(span * REL_TOL, 1e-9)


@dataclass
class NetComparison:
    """One net's results: the exact frontier plus per-method Pareto sets."""

    net_name: str
    degree: int
    frontier: List[Solution]
    methods: Dict[str, List[Solution]]
    runtimes: Dict[str, float] = field(default_factory=dict)

    def optimal(self, method: str) -> bool:
        """Did the method attain at least one frontier point?"""
        return attains_frontier(
            self.methods[method], self.frontier, tol=_match_tol(self.frontier)
        )

    def found_count(self, method: str) -> int:
        """How many frontier points the method attained."""
        return count_on_frontier(
            self.methods[method], self.frontier, tol=_match_tol(self.frontier)
        )


@dataclass
class Table3Row:
    """Non-optimality ratios for one degree."""

    degree: int
    num_nets: int
    ratios: Dict[str, float]


@dataclass
class Table4Row:
    """Frontier points found, per method, for one degree."""

    degree: int
    frontier_total: int
    found: Dict[str, int]


def table3(rows: Sequence[NetComparison]) -> List[Table3Row]:
    """The Table III artefact from per-net comparisons."""
    by_degree: Dict[int, List[NetComparison]] = {}
    for r in rows:
        by_degree.setdefault(r.degree, []).append(r)
    out: List[Table3Row] = []
    for n in sorted(by_degree):
        group = by_degree[n]
        methods = group[0].methods.keys()
        ratios = {
            m: sum(0 if r.optimal(m) else 1 for r in group) / len(group)
            for m in methods
        }
        out.append(Table3Row(degree=n, num_nets=len(group), ratios=ratios))
    return out


def table4(rows: Sequence[NetComparison]) -> List[Table4Row]:
    """The Table IV artefact from per-net comparisons."""
    by_degree: Dict[int, List[NetComparison]] = {}
    for r in rows:
        by_degree.setdefault(r.degree, []).append(r)
    out: List[Table4Row] = []
    for n in sorted(by_degree):
        group = by_degree[n]
        methods = group[0].methods.keys()
        out.append(
            Table4Row(
                degree=n,
                frontier_total=sum(len(r.frontier) for r in group),
                found={m: sum(r.found_count(m) for r in group) for m in methods},
            )
        )
    return out


# ---------------------------------------------------------------- Fig. 7


@dataclass
class AveragedCurve:
    """One method's averaged normalised Pareto curve."""

    method: str
    budgets: List[float]            # normalised wirelength grid
    mean_delay: List[float]         # mean normalised best delay per budget
    total_runtime: float = 0.0


def average_curves(
    rows: Sequence[NetComparison],
    w_refs: Dict[str, float],
    d_refs: Dict[str, float],
    budgets: Optional[Sequence[float]] = None,
    methods: Optional[Sequence[str]] = None,
) -> List[AveragedCurve]:
    """Average each method's normalised curve over the nets.

    ``w_refs[name] / d_refs[name]`` give each net's normalisers
    (``w(FLUTE)``, ``d(CL)``). For every budget ``b`` on the grid, a net
    contributes the best normalised delay among the method's solutions
    with ``w / w_ref <= b`` (the method's own worst solution when none
    qualifies, so sparse curves are penalised rather than skipped).
    """
    if budgets is None:
        budgets = [1.0 + 0.02 * i for i in range(26)]  # 1.00 .. 1.50
    method_names = list(methods or rows[0].methods.keys())
    curves: List[AveragedCurve] = []
    for m in method_names:
        means: List[float] = []
        for b in budgets:
            acc = 0.0
            for r in rows:
                wr, dr = w_refs[r.net_name], d_refs[r.net_name]
                pts = normalized_front(r.methods[m], wr, dr)
                feasible = [d for (w, d) in pts if w <= b + 1e-12]
                if feasible:
                    acc += min(feasible)
                else:
                    acc += max(d for (_w, d) in pts)
            means.append(acc / len(rows))
        curves.append(
            AveragedCurve(
                method=m,
                budgets=list(budgets),
                mean_delay=means,
                total_runtime=sum(r.runtimes.get(m, 0.0) for r in rows),
            )
        )
    return curves


def curve_dominates(a: AveragedCurve, b: AveragedCurve, slack: float = 0.0) -> bool:
    """True when curve ``a`` is at least as low as ``b`` everywhere
    (within ``slack``) — "tighter Pareto curve" in the paper's sense."""
    return all(x <= y + slack for x, y in zip(a.mean_delay, b.mean_delay))
