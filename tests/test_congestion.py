"""Tests for the congestion extension (tri-objective routing)."""

import random

import pytest

from repro.congestion.model import CongestionMap
from repro.congestion.pareto3 import (
    dominates3,
    is_pareto_front3,
    pareto_filter3,
    project_wd,
)
from repro.congestion.router import (
    congestion_annotated_front,
    embed_min_congestion,
    pareto_dw3,
)
from repro.core.pareto_dw import pareto_frontier
from repro.exceptions import DegreeTooLargeError
from repro.geometry.net import Net, random_net
from repro.baselines.rsmt import rsmt
from repro.routing.embedding import Segment
from repro.geometry.point import Point


def flat_map(weight=1.0, span=100.0, cells=10):
    return CongestionMap.uniform(0, 0, span, span, cells, cells, weight=weight)


def hotspot_map(span=100.0, cells=10, where=(4, 4), radius=2, hot=10.0):
    cmap = flat_map(span=span, cells=cells)
    cx, cy = where
    for ix in range(max(0, cx - radius), min(cells, cx + radius + 1)):
        for iy in range(max(0, cy - radius), min(cells, cy + radius + 1)):
            cmap.weights[ix][iy] = hot
    return cmap


class TestCongestionMap:
    def test_uniform_cost_equals_length(self):
        cmap = flat_map()
        seg = Segment(Point(10, 20), Point(60, 20))
        assert abs(cmap.segment_cost(seg) - 50) < 1e-9

    def test_weighted_cell_scales_cost(self):
        cmap = hotspot_map(where=(2, 2), radius=0, hot=5.0)
        # Horizontal run through cell (2, 2) = x in [20,30), y in [20,30).
        seg = Segment(Point(20, 25), Point(30, 25))
        assert abs(cmap.segment_cost(seg) - 50) < 1e-9

    def test_partial_cell_crossing(self):
        cmap = hotspot_map(where=(2, 2), radius=0, hot=5.0)
        seg = Segment(Point(25, 25), Point(35, 25))  # half hot, half cool
        assert abs(cmap.segment_cost(seg) - (5 * 5.0 + 5 * 1.0)) < 1e-9

    def test_outside_region_uses_outside_weight(self):
        cmap = flat_map(span=100.0)
        cmap.outside_weight = 3.0
        seg = Segment(Point(-10, 5), Point(0, 5))
        assert abs(cmap.segment_cost(seg) - 30) < 1e-9

    def test_vertical_cost(self):
        cmap = hotspot_map(where=(0, 0), radius=0, hot=2.0)
        seg = Segment(Point(5, 0), Point(5, 10))
        assert abs(cmap.segment_cost(seg) - 20) < 1e-9

    def test_best_edge_cost_picks_cheaper_l(self):
        # Hot square in the lower-right: the lower-L crosses it, the
        # upper-L avoids it.
        cmap = hotspot_map(where=(8, 0), radius=1, hot=10.0)
        cost, lower = cmap.best_edge_cost((70, 5), (99, 30))
        alt = cmap.edge_cost((70, 5), (99, 30), lower_l=True)
        assert cost <= alt
        assert not lower  # upper-L avoids the hot corner

    def test_validation(self):
        with pytest.raises(ValueError):
            CongestionMap(0, 0, 0.0, [[1.0]])
        with pytest.raises(ValueError):
            CongestionMap(0, 0, 1.0, [])
        with pytest.raises(ValueError):
            CongestionMap.uniform(0, 0, 100, 50, 10, 10)

    def test_random_hotspots_deterministic(self):
        a = CongestionMap.random_hotspots(0, 0, 100, 10, rng=random.Random(1))
        b = CongestionMap.random_hotspots(0, 0, 100, 10, rng=random.Random(1))
        assert a.weights == b.weights


class TestPareto3:
    def test_dominance(self):
        assert dominates3((1, 1, 1), (2, 2, 2))
        assert dominates3((1, 1, 1), (1, 1, 2))
        assert not dominates3((1, 1, 1), (1, 1, 1))
        assert not dominates3((1, 3, 1), (2, 2, 2))

    def test_filter_keeps_tradeoffs(self):
        sols = [
            (1, 3, 3, "a"),
            (3, 1, 3, "b"),
            (3, 3, 1, "c"),
            (4, 4, 4, "dominated"),
        ]
        out = pareto_filter3(sols)
        assert {s[3] for s in out} == {"a", "b", "c"}
        assert is_pareto_front3(out)

    def test_filter_dedupes(self):
        out = pareto_filter3([(1, 1, 1, "x"), (1, 1, 1, "y")])
        assert len(out) == 1

    def test_project_wd(self):
        sols = [(1, 3, 9, "a"), (2, 2, 1, "b"), (1.5, 2.8, 0.5, "c")]
        wd = project_wd(sols)
        assert [(s[0], s[1]) for s in wd] == [(1, 3), (1.5, 2.8), (2, 2)]


class TestParetoDw3:
    def test_uniform_map_reduces_to_2d(self):
        """With weight-1 congestion everywhere, c is determined by the
        embedding of the tree, and the (w, d) projection of the 3-D front
        equals the 2-D frontier."""
        rng = random.Random(1)
        for _ in range(3):
            net = random_net(5, rng=rng, span=100.0)
            front3 = pareto_dw3(net, flat_map())
            wd = [(round(w, 6), round(d, 6)) for w, d, _t in project_wd(front3)]
            exact = [
                (round(w, 6), round(d, 6)) for w, d in pareto_frontier(net)
            ]
            assert wd == exact

    def test_front_is_3d_antichain_of_valid_trees(self):
        net = random_net(5, rng=random.Random(2), span=100.0)
        cmap = CongestionMap.random_hotspots(
            0, 0, 100, 10, rng=random.Random(3)
        )
        front = pareto_dw3(net, cmap)
        assert front and is_pareto_front3(front)
        for w, d, c, tree in front:
            tree.validate()
            assert c >= 0

    def test_hotspot_creates_congestion_tradeoff(self):
        """A hot region between source and sink forces a wire/congestion
        trade-off: the direct route is short but hot, the detour longer
        but cool."""
        net = Net.from_points((5, 50), [(95, 50), (50, 95)])
        cmap = hotspot_map(where=(5, 5), radius=1, hot=50.0)
        front = pareto_dw3(net, cmap, max_degree=6)
        costs = [c for _w, _d, c, _t in front]
        # The frontier must offer at least one escape from the hot path.
        assert len(front) >= 1
        assert min(costs) < cmap.edge_cost((5, 50), (95, 50))

    def test_degree_guard(self):
        with pytest.raises(DegreeTooLargeError):
            pareto_dw3(random_net(8, rng=random.Random(0)), flat_map())


class TestEmbedding:
    def test_embedding_choice_never_hurts(self):
        rng = random.Random(4)
        for _ in range(3):
            net = random_net(8, rng=rng, span=100.0)
            tree = rsmt(net)
            cmap = CongestionMap.random_hotspots(
                0, 0, 100, 10, rng=random.Random(5)
            )
            _, best = embed_min_congestion(tree, cmap)
            fixed = sum(
                cmap.edge_cost(tree.points[p], tree.points[c])
                for c, p in tree.edges()
            )
            assert best <= fixed + 1e-9

    def test_segments_cover_wirelength(self):
        net = random_net(6, rng=random.Random(6), span=100.0)
        tree = rsmt(net)
        segs, _ = embed_min_congestion(tree, flat_map())
        assert abs(sum(s.length for s in segs) - tree.wirelength()) < 1e-9


class TestAnnotatedFront:
    def test_any_degree(self):
        net = random_net(14, rng=random.Random(7), span=100.0)
        cmap = CongestionMap.random_hotspots(0, 0, 100, 10, rng=random.Random(8))
        front = congestion_annotated_front(net, cmap)
        assert front and is_pareto_front3(front)

    def test_exact_wd_projection_small(self):
        net = random_net(6, rng=random.Random(9), span=100.0)
        front = congestion_annotated_front(net, flat_map())
        wd = [(round(w, 6), round(d, 6)) for w, d, _t in project_wd(front)]
        exact = [(round(w, 6), round(d, 6)) for w, d in pareto_frontier(net)]
        assert wd == exact
