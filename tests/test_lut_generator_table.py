"""Tests for pattern enumeration, symbolic DW, and the lookup table."""

import random

import pytest

from repro.core.pareto_dw import pareto_frontier
from repro.exceptions import LookupTableError
from repro.geometry.net import Net, random_net
from repro.lut.cluster import TopologyPool
from repro.lut.generator import (
    count_canonical_patterns,
    enumerate_canonical_patterns,
    solve_pattern,
)
from repro.lut.table import LookupTable, net_pattern
from repro.routing.validate import check_tree


class TestPatternEnumeration:
    def test_counts_small_degrees(self):
        # Orbit counting: n! * n total (perm, source) pairs, ~/8 orbits.
        assert count_canonical_patterns(3) == 4
        assert count_canonical_patterns(4) == 16
        assert count_canonical_patterns(5) == 89

    def test_all_enumerated_are_canonical(self):
        from repro.geometry.transforms import canonical_pattern

        for perm, src in enumerate_canonical_patterns(4):
            cperm, csrc, _ = canonical_pattern(perm, src)
            assert (cperm, csrc) == (perm, src)

    def test_orbits_cover_everything(self):
        """Every (perm, source) pair canonicalises into the enumerated set."""
        import itertools

        from repro.geometry.transforms import canonical_pattern

        canon = set(enumerate_canonical_patterns(4))
        for perm in itertools.permutations(range(4)):
            for src in range(4):
                cperm, csrc, _ = canonical_pattern(perm, src)
                assert (cperm, csrc) in canon


class TestSolvePattern:
    def test_solutions_nonempty(self):
        ps = solve_pattern((0, 1, 2), 0)
        assert ps.solutions

    def test_payloads_are_edge_sets(self):
        ps = solve_pattern((1, 0, 2), 1)
        for s in ps.solutions:
            assert isinstance(s.payload, frozenset)
            for a, b in s.payload:
                assert isinstance(a, tuple) and isinstance(b, tuple)

    def test_lemma_flags_do_not_change_coverage(self):
        """With and without Lemmas 3/4, evaluating the solution sets at
        random gaps yields the same Pareto values."""
        rng = random.Random(1)
        full = solve_pattern((2, 0, 3, 1), 2, lemma3=False, lemma4=False)
        fast = solve_pattern((2, 0, 3, 1), 2)
        for _ in range(20):
            gaps = [rng.uniform(0.1, 10) for _ in range(6)]
            def front(ps):
                vals = sorted(s.evaluate(gaps) for s in ps.solutions)
                best, bd = [], float("inf")
                for w, d in vals:
                    if d < bd - 1e-9:
                        best.append((round(w, 6), round(d, 6)))
                        bd = d
                return best
            assert front(full) == front(fast)

    def test_lp_prune_is_subset(self):
        cw = solve_pattern((1, 3, 0, 2), 0, prune_mode="componentwise")
        lp = solve_pattern((1, 3, 0, 2), 0, prune_mode="lp")
        assert len(lp.solutions) <= len(cw.solutions)


class TestNetPattern:
    def test_identity_grid(self):
        net = Net.from_points((0, 0), [(1, 1), (2, 2)])
        perm, src, xs, ys = net_pattern(net)
        assert perm == (0, 1, 2)
        assert src == 0
        assert xs == [0, 1, 2] and ys == [0, 1, 2]

    def test_tie_breaking_stable(self):
        net = Net.from_points((0, 0), [(0, 5), (5, 0)])
        perm, src, xs, ys = net_pattern(net)
        assert sorted(perm) == [0, 1, 2]
        assert xs == [0, 0, 5]

    def test_source_column_tracked(self):
        net = Net.from_points((9, 9), [(1, 1), (5, 5)])
        perm, src, _, _ = net_pattern(net)
        assert src == 2  # source has the largest x


class TestLookupTable:
    def test_stats_shape(self, lut45):
        assert lut45.stats[4].num_index == 16
        assert lut45.stats[5].num_index == 89
        assert lut45.stats[5].avg_topologies > 1

    def test_covers(self, lut45):
        assert lut45.covers(2) and lut45.covers(3)
        assert lut45.covers(4) and lut45.covers(5)
        assert not lut45.covers(6)

    def test_lookup_missing_degree_raises(self, lut45):
        net = random_net(7, rng=random.Random(1))
        with pytest.raises(LookupTableError):
            lut45.lookup(net)

    @pytest.mark.parametrize("degree", [4, 5])
    def test_lookup_matches_exact_dw(self, lut45, degree, assert_fronts_equal):
        rng = random.Random(degree * 31)
        for _ in range(10):
            net = random_net(degree, rng=rng)
            assert_fronts_equal(lut45.frontier(net), pareto_frontier(net))

    def test_lookup_degenerate_coordinates(self, lut45, assert_fronts_equal):
        net = Net.from_points((0, 0), [(0, 10), (10, 0), (10, 10)])
        assert_fronts_equal(lut45.frontier(net), pareto_frontier(net))

    def test_lookup_collinear(self, lut45, assert_fronts_equal):
        net = Net.from_points((0, 0), [(3, 0), (7, 0), (12, 0)])
        assert_fronts_equal(lut45.frontier(net), pareto_frontier(net))

    def test_trees_valid_and_on_hanan(self, lut45):
        rng = random.Random(5)
        for _ in range(5):
            net = random_net(5, rng=rng)
            for w, d, tree in lut45.lookup(net):
                check_tree(tree, hanan=True)

    def test_symmetry_consistency(self, lut45, assert_fronts_equal):
        """Reflected/rotated nets get reflected frontiers (same values)."""
        rng = random.Random(6)
        net = random_net(5, rng=rng)
        mirrored = Net.from_points(
            (-net.source.x, net.source.y),
            [(-s.x, s.y) for s in net.sinks],
        )
        assert_fronts_equal(lut45.frontier(net), lut45.frontier(mirrored))

    def test_on_demand_pattern_solving(self):
        table = LookupTable.build(degrees=(4,), limit_per_degree=2)
        rng = random.Random(7)
        # Most patterns are missing; lookups must solve on demand.
        for _ in range(5):
            net = random_net(4, rng=rng)
            front = table.lookup(net)
            assert front
        # And raising mode must raise for a missing pattern.
        table2 = LookupTable.build(degrees=(4,), limit_per_degree=1)
        missing = None
        for _ in range(50):
            net = random_net(4, rng=rng)
            from repro.geometry.transforms import canonical_pattern
            from repro.lut.table import net_pattern as np_

            perm, src, _, _ = np_(net)
            cp = canonical_pattern(perm, src)[:2]
            if cp not in table2.entries[4]:
                missing = net
                break
        assert missing is not None
        with pytest.raises(LookupTableError):
            table2.lookup(missing, on_missing="raise")


class TestTopologyPool:
    def test_interning(self):
        pool = TopologyPool()
        e1 = frozenset({((0, 0), (1, 1))})
        e2 = frozenset({((0, 0), (1, 1))})
        e3 = frozenset({((0, 0), (2, 2))})
        assert pool.intern(e1) == pool.intern(e2)
        assert pool.intern(e3) != pool.intern(e1)
        assert len(pool) == 2
        assert pool.hits == 2  # e2 and the re-intern of e1

    def test_get_roundtrip(self):
        pool = TopologyPool()
        e = frozenset({((0, 0), (1, 1))})
        assert pool.get(pool.intern(e)) == e

    def test_dedup_ratio(self, lut45):
        # Clustering must actually share topologies across entries.
        assert lut45.pool.dedup_ratio > 1.5
