"""Adapters exposing every algorithm in the library as a :class:`Router`.

Importing this module populates the registry (``repro.engine`` does so on
import). :class:`PatLabor` already satisfies the protocol natively; the
function-style baselines are wrapped in :class:`FunctionRouter`, which
pins down the name/capabilities metadata the middleware needs.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..core.pareto import Solution
from ..core.patlabor import DEFAULT_LAMBDA, PatLabor, PatLaborConfig
from ..geometry.net import Net
from ..routing.tree import RoutingTree
from .protocol import Router, RouterCapabilities
from .registry import register_router

RouteFn = Callable[[Net], List[Solution]]
TreeFn = Callable[[Net], RoutingTree]


class FunctionRouter:
    """A :class:`Router` over a plain ``net -> solutions`` function."""

    def __init__(
        self, name: str, fn: RouteFn, capabilities: RouterCapabilities
    ) -> None:
        self.name = name
        self.capabilities = capabilities
        self._fn = fn

    def route(self, net: Net) -> List[Solution]:
        """Delegate to the wrapped function."""
        return self._fn(net)

    def __repr__(self) -> str:
        return f"FunctionRouter({self.name!r})"


def single_tree_router(
    name: str, fn: TreeFn, capabilities: RouterCapabilities
) -> Router:
    """Wrap a one-tree constructor as a singleton-front :class:`Router`."""

    def route(net: Net) -> List[Solution]:
        tree = fn(net)
        w, d = tree.objective()
        return [(w, d, tree)]

    return FunctionRouter(name, route, capabilities)


@register_router(
    "patlabor",
    display_name="PatLabor",
    summary="the paper's practical Pareto router (exact to lambda, "
    "local search above)",
)
def make_patlabor(
    config: Optional[PatLaborConfig] = None,
    lut: Any = None,
    policy: Any = None,
    representation: Optional[str] = None,
) -> Router:
    """PatLabor with an optional lookup table / config / policy.

    ``representation`` (``"tuple"`` | ``"array"``) overrides the config's
    frontier-kernel representation, e.g.
    ``create_router("patlabor", representation="array")``.
    """
    if representation is not None:
        from dataclasses import replace

        config = replace(
            config or PatLaborConfig(), representation=representation
        )
    return PatLabor(lut=lut, config=config, policy=policy)


@register_router(
    "pareto-dw",
    display_name="ParetoDW",
    summary="exact Pareto-frontier Dreyfus-Wagner DP (small nets only)",
)
def make_pareto_dw(
    max_degree: Optional[int] = None, representation: str = "tuple"
) -> Router:
    """The exact DP, degree-capped (default cap: the module's ceiling).

    ``representation="array"`` selects the NumPy array-native engine
    (bit-identical results; see ``docs/numerics.md``).
    """
    from ..core.pareto_dw import DEFAULT_MAX_DEGREE, pareto_dw

    limit = max_degree if max_degree is not None else DEFAULT_MAX_DEGREE

    def route(net: Net) -> List[Solution]:
        return pareto_dw(net, max_degree=limit, representation=representation)

    return FunctionRouter(
        "pareto-dw",
        route,
        RouterCapabilities(exact_up_to=limit, max_degree=limit),
    )


@register_router(
    "pareto-ks",
    display_name="ParetoKS",
    summary="divide-and-conquer Pareto approximation (Kalpakis-Sherman)",
)
def make_pareto_ks(
    base_size: int = 9,
    max_front: int = 32,
    representation: str = "tuple",
) -> Router:
    """Pareto-KS with configurable base-case size and front cap.

    ``representation="array"`` routes base cases through the array-native
    DP and filters combination buckets with the NumPy kernels.
    """
    from ..core.pareto_ks import pareto_ks

    def route(net: Net) -> List[Solution]:
        return pareto_ks(
            net,
            base_size=base_size,
            max_front=max_front,
            representation=representation,
        )

    return FunctionRouter(
        "pareto-ks", route, RouterCapabilities(exact_up_to=base_size)
    )


@register_router(
    "salt",
    display_name="SALT",
    summary="shallow-light trees over an epsilon sweep (Chen & Young)",
)
def make_salt() -> Router:
    """The SALT epsilon-sweep baseline."""
    from ..baselines.salt import salt_sweep

    return FunctionRouter("salt", salt_sweep, RouterCapabilities())


@register_router(
    "ysd",
    display_name="YSD",
    summary="learned weighted-sum substitute (convex-hull points only)",
)
def make_ysd() -> Router:
    """The YSD weighted-sum baseline substitute."""
    from ..baselines.ysd import ysd

    return FunctionRouter("ysd", ysd, RouterCapabilities())


@register_router(
    "pd",
    display_name="PD",
    summary="Prim-Dijkstra alpha sweep with PD-II refinement",
)
def make_pd() -> Router:
    """The PD(-II) alpha-sweep baseline."""
    from ..baselines.prim_dijkstra import pd_sweep

    return FunctionRouter("pd", pd_sweep, RouterCapabilities())


@register_router(
    "rsmt",
    display_name="RSMT",
    summary="minimum-wirelength Steiner tree (FLUTE substitute), "
    "singleton front",
)
def make_rsmt() -> Router:
    """The RSMT engine as a one-solution router."""
    from ..baselines.rsmt import rsmt

    return single_tree_router(
        "rsmt", rsmt,
        RouterCapabilities(pareto=False, frontier_selection=False),
    )


@register_router(
    "rsma",
    display_name="RSMA",
    summary="Cordova-Lee shortest-path arborescence, singleton front",
)
def make_rsma() -> Router:
    """The RSMA heuristic as a one-solution router."""
    from ..baselines.rsma import rsma

    return single_tree_router(
        "rsma", rsma,
        RouterCapabilities(pareto=False, frontier_selection=False),
    )


#: Re-exported for keeping adapter defaults in sync with PatLabor's lambda.
__all__ = [
    "FunctionRouter",
    "single_tree_router",
    "make_patlabor",
    "make_pareto_dw",
    "make_pareto_ks",
    "make_salt",
    "make_ysd",
    "make_pd",
    "make_rsmt",
    "make_rsma",
    "DEFAULT_LAMBDA",
]
