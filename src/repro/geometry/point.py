"""Planar points under the rectilinear (L1) metric.

The whole library measures distance with the L1 norm, matching the paper's
metric space ``(R^2, ||.||_1)``. Points are plain ``(x, y)`` tuples at the
hot-loop level for speed; :class:`Point` is a ``NamedTuple`` wrapper that is
interchangeable with raw tuples (it *is* a tuple) but gives the public API
named fields and helper methods.
"""

from __future__ import annotations

import math
from typing import Iterable, List, NamedTuple, Sequence, Tuple

Coord = float
PointLike = Tuple[Coord, Coord]


class Point(NamedTuple):
    """A point in the rectilinear plane. Interchangeable with ``(x, y)`` tuples."""

    x: Coord
    y: Coord

    def dist(self, other: PointLike) -> Coord:
        """L1 distance to ``other``."""
        return abs(self.x - other[0]) + abs(self.y - other[1])

    def translated(self, dx: Coord, dy: Coord) -> "Point":
        """Return this point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)


def l1(a: PointLike, b: PointLike) -> Coord:
    """L1 (rectilinear) distance between two points."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def hpwl(points: Iterable[PointLike]) -> Coord:
    """Half-perimeter wirelength of a point set (0 for fewer than 2 points)."""
    pts = list(points)
    if len(pts) < 2:
        return 0.0
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def median_point(points: Sequence[PointLike]) -> Point:
    """Coordinate-wise median of a point set.

    For three points this is the unique Steiner point of the optimal
    rectilinear star, which the degree-3 fast path in PatLabor relies on.
    """
    if not points:
        raise ValueError("median_point of an empty point set")
    xs = sorted(p[0] for p in points)
    ys = sorted(p[1] for p in points)
    mid = len(xs) // 2
    if len(xs) % 2 == 1:
        return Point(xs[mid], ys[mid])
    return Point((xs[mid - 1] + xs[mid]) / 2.0, (ys[mid - 1] + ys[mid]) / 2.0)


def is_finite(p: PointLike) -> bool:
    """True when both coordinates are finite real numbers."""
    return math.isfinite(p[0]) and math.isfinite(p[1])


def dedupe_points(points: Iterable[PointLike]) -> List[Point]:
    """Drop exact duplicates, preserving first-seen order."""
    seen = set()
    out: List[Point] = []
    for p in points:
        key = (p[0], p[1])
        if key not in seen:
            seen.add(key)
            out.append(Point(*key))
    return out


def manhattan_nearest(p: PointLike, candidates: Sequence[PointLike]) -> int:
    """Index of the candidate closest to ``p`` in L1 (ties to lowest index)."""
    if not candidates:
        raise ValueError("manhattan_nearest with no candidates")
    best_i = 0
    best_d = l1(p, candidates[0])
    for i in range(1, len(candidates)):
        d = l1(p, candidates[i])
        if d < best_d:
            best_d = d
            best_i = i
    return best_i
