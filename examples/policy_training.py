#!/usr/bin/env python3
"""Train PatLabor's pin-selection policy π (paper, Section V-B).

Run:  python examples/policy_training.py [--quick]

Reproduces the policy-iteration + curriculum training loop: random
selection rollouts on sampled nets, regression of the 4-term score onto
the above-median rollouts, warm-starting each degree from the previous
one. Prints the learned per-degree weights in the format of
``repro.core.policy.DEFAULT_PARAMS`` (the shipped defaults came from a
longer run of exactly this script) and compares routing quality of the
fresh policy against random selection.
"""

import random
import sys

from repro.core.pareto import hypervolume
from repro.core.patlabor import PatLabor, PatLaborConfig
from repro.core.policy import SelectionPolicy, train_policy
from repro.geometry.net import random_net


def evaluate(policy: SelectionPolicy, degree: int, nets: int, seed: int) -> float:
    """Mean normalised hypervolume over fresh nets."""
    rng = random.Random(seed)
    total = 0.0
    for _ in range(nets):
        net = random_net(degree, rng=rng)
        router = PatLabor(policy=policy, config=PatLaborConfig(seed=0))
        front = router.route(net)
        ref = (2.0 * net.star_wirelength(), 2.0 * net.star_wirelength())
        total += hypervolume(front, ref) / (ref[0] * ref[1])
    return total / nets


def main(quick: bool = False) -> None:
    degrees = (10, 14) if quick else (10, 14, 20, 28)
    nets_per_degree = 3 if quick else 6
    rollouts = 6 if quick else 10

    print(
        f"training policy: degrees {degrees}, {nets_per_degree} nets/degree, "
        f"{rollouts} rollouts/net (curriculum warm-start)"
    )
    learned = train_policy(
        degrees=degrees,
        nets_per_degree=nets_per_degree,
        rollouts=rollouts,
        lam=8,
        seed=0,
    )
    print("\nlearned weights (paste into DEFAULT_PARAMS to ship):")
    for n, p in sorted(learned.items()):
        print(
            f"    {n}: PolicyParams({p.a1:.2f}, {p.a2:.2f}, "
            f"{p.a3:.2f}, {p.a4:.2f}),"
        )

    # Head-to-head: learned policy vs random selection on held-out nets.
    class RandomPolicy(SelectionPolicy):
        def __init__(self):
            super().__init__()
            self._rng = random.Random(1)

        def select(self, net, tree, k):
            idx = list(range(len(net.sinks)))
            self._rng.shuffle(idx)
            return idx[:k]

    eval_degree = degrees[-1]
    eval_nets = 4 if quick else 8
    score_learned = evaluate(SelectionPolicy(learned), eval_degree, eval_nets, seed=99)
    score_random = evaluate(RandomPolicy(), eval_degree, eval_nets, seed=99)
    print(
        f"\nheld-out degree-{eval_degree} nets: "
        f"learned policy hypervolume = {score_learned:.4f}, "
        f"random selection = {score_random:.4f}"
    )
    if score_learned >= score_random:
        print("learned policy matches or beats random selection ✔")
    else:
        print(
            "random won this tiny evaluation — rerun without --quick for a "
            "meaningful sample"
        )


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
