"""Composable middleware around the :class:`~repro.engine.protocol.Router`.

Cross-cutting concerns are layered as wrappers, outermost first:

* :class:`ValidatingRouter` — typed input policy at the engine boundary:
  non-``Net`` inputs and nets beyond the router's declared ``max_degree``
  raise :mod:`repro.exceptions` errors *before* any algorithm runs.
* cache — :class:`~repro.core.cache.CachedRouter` (translation- or
  symmetry-canonicalizing), sitting outside observability so cache hits
  are served without emitting routing events.
* :class:`ObservedRouter` — spans plus one ``net_routed`` event per
  actually-routed net, for *every* router (this used to live inside
  ``PatLabor.route``; hoisting it here gives the baselines the same
  telemetry for free).

All middleware delegates unknown attributes to the wrapped router, so
stack-agnostic callers can still reach ``hits`` / ``dispatch_tier`` /
``clear`` on the assembled engine.
"""

from __future__ import annotations

import time
from typing import List

from ..exceptions import DegreeTooLargeError, InvalidNetError
from ..geometry.net import Net
from ..core.pareto import Solution
from ..obs import (
    current_net_id,
    current_request_id,
    emit_event,
    events_enabled,
    peak_rss_kb,
    span,
)
from .protocol import Router, RouterCapabilities


class RouterMiddleware:
    """Base wrapper: a :class:`Router` around another :class:`Router`.

    ``name`` and ``capabilities`` mirror the wrapped router; any other
    attribute (cache statistics, ``dispatch_tier``, ...) is forwarded, so
    middleware composes transparently.
    """

    def __init__(self, inner: Router) -> None:
        self.inner = inner

    @property
    def name(self) -> str:
        """The wrapped router's name."""
        return self.inner.name

    @property
    def capabilities(self) -> RouterCapabilities:
        """The wrapped router's capabilities."""
        return self.inner.capabilities

    def route(self, net: Net) -> List[Solution]:
        """Delegate to the wrapped router (subclasses add behaviour)."""
        return self.inner.route(net)

    def __getattr__(self, item: str) -> object:
        # Only called for attributes not found normally: forward to the
        # wrapped router so stacked middleware stays transparent.
        return getattr(self.inner, item)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.inner!r})"


class ValidatingRouter(RouterMiddleware):
    """Input validation and error policy at the engine boundary.

    ``Net`` construction already rejects malformed geometry (too few
    pins, duplicates, non-finite coordinates) with
    :class:`~repro.exceptions.InvalidNetError`; this middleware adds the
    two checks construction cannot do: the input actually *is* a ``Net``,
    and its degree respects the wrapped router's declared ``max_degree``
    (raising :class:`~repro.exceptions.DegreeTooLargeError` here instead
    of deep inside a DP transition).
    """

    def route(self, net: Net) -> List[Solution]:
        """Validate ``net`` against the router's capabilities, then route."""
        if not isinstance(net, Net):
            raise InvalidNetError(
                f"engine expects a repro.geometry.net.Net, got "
                f"{type(net).__name__}"
            )
        limit = self.capabilities.max_degree
        if limit is not None and net.degree > limit:
            raise DegreeTooLargeError(net.degree, limit)
        return self.inner.route(net)


class ObservedRouter(RouterMiddleware):
    """Spans and per-net events for any router.

    Wraps each call in an ``engine.route`` span and, with event logging
    enabled (:func:`repro.obs.events_enable`), emits one ``net_routed``
    event — net id, degree, dispatch tier (the wrapped router's
    ``dispatch_tier`` when it has one, its name otherwise), frontier
    size, wall time, peak RSS. Inside a serve request
    (:func:`repro.obs.request_context`) the event also carries the
    daemon-assigned ``request_id``/``net_id``, which is how a request is
    traced across the daemon/worker boundary. Emission happens after the
    frontier is computed and never influences it; results are
    bit-identical with observability on or off.
    """

    def route(self, net: Net) -> List[Solution]:
        """Route ``net``, recording a span and a ``net_routed`` event."""
        if not events_enabled():
            with span("engine.route"):
                return self.inner.route(net)
        t0 = time.perf_counter()
        with span("engine.route"):
            front = self.inner.route(net)
        fields: dict = {}
        request_id = current_request_id()
        if request_id is not None:
            fields["request_id"] = request_id
            net_id = current_net_id()
            if net_id is not None:
                fields["net_id"] = net_id
        emit_event(
            "net_routed",
            net=net.name or f"net_{id(net):x}",
            degree=net.degree,
            tier=self._tier(net),
            front_size=len(front),
            wall_s=time.perf_counter() - t0,
            peak_rss_kb=peak_rss_kb(),
            **fields,
        )
        return front

    def _tier(self, net: Net) -> str:
        tier_fn = getattr(self.inner, "dispatch_tier", None)
        if callable(tier_fn):
            return str(tier_fn(net))
        return self.name
