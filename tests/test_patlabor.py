"""Tests for the PatLabor driver: dispatch, optimality, local search."""

import random

import pytest

from repro.core.pareto import dominates, is_pareto_front, weakly_dominates
from repro.core.pareto_dw import pareto_dw, pareto_frontier
from repro.core.patlabor import PatLabor, PatLaborConfig, reassemble
from repro.core.policy import SelectionPolicy
from repro.geometry.net import Net, random_net
from repro.routing.validate import check_tree


class TestSmallDegreeDispatch:
    def test_degree2_single_solution(self):
        net = Net.from_points((0, 0), [(3, 4)])
        front = PatLabor().route(net)
        assert len(front) == 1
        assert front[0][:2] == (7.0, 7.0)

    def test_degree3_median_star(self):
        net = Net.from_points((0, 0), [(10, 2), (4, 8)])
        front = PatLabor().route(net)
        assert len(front) == 1
        w, d, tree = front[0]
        # The median star is simultaneously optimal in both objectives:
        # median point (4, 2), three spokes of length 6 = HPWL = 18.
        assert w == 18
        assert d == 12
        check_tree(tree, hanan=True)

    @pytest.mark.parametrize("degree", [4, 5, 6, 7])
    def test_exact_for_small_degrees(self, degree, assert_fronts_equal):
        rng = random.Random(degree)
        for _ in range(3):
            net = random_net(degree, rng=rng)
            assert_fronts_equal(
                PatLabor().route(net), pareto_dw(net, with_trees=False)
            )

    def test_uses_lut_when_supplied(self, lut45, assert_fronts_equal):
        rng = random.Random(77)
        router = PatLabor(lut=lut45)
        for _ in range(5):
            net = random_net(5, rng=rng)
            assert_fronts_equal(router.route(net), pareto_dw(net, with_trees=False))


class TestLocalSearch:
    def test_front_contains_rsmt_wirelength(self):
        from repro.baselines.rsmt import rsmt

        net = random_net(20, rng=random.Random(1))
        front = PatLabor().route(net)
        w_rsmt = rsmt(net).wirelength()
        assert front[0][0] <= w_rsmt + 1e-9

    def test_front_is_antichain_of_valid_trees(self):
        net = random_net(25, rng=random.Random(2))
        front = PatLabor().route(net)
        assert is_pareto_front(front)
        for w, d, tree in front:
            check_tree(tree)
            assert abs(tree.wirelength() - w) < 1e-6
            assert abs(tree.delay() - d) < 1e-6

    def test_iterations_improve_delay(self):
        """The local search must push delay meaningfully below the RSMT's."""
        from repro.baselines.rsmt import rsmt

        net = random_net(30, rng=random.Random(3))
        seed_delay = rsmt(net).delay()
        front = PatLabor().route(net)
        assert min(d for _w, d, _t in front) < seed_delay

    def test_iterations_config_respected(self):
        net = random_net(24, rng=random.Random(4))
        quick = PatLabor(config=PatLaborConfig(iterations=1))
        deep = PatLabor(config=PatLaborConfig(iterations=6))
        f_quick = quick.route(net)
        f_deep = deep.route(net)
        # More iterations never hurt the best achieved delay.
        assert min(d for _w, d, _t in f_deep) <= min(
            d for _w, d, _t in f_quick
        ) + 1e-9

    def test_deterministic_given_seed(self):
        net = random_net(18, rng=random.Random(6))
        a = [(w, d) for w, d, _ in PatLabor(config=PatLaborConfig(seed=5)).route(net)]
        b = [(w, d) for w, d, _ in PatLabor(config=PatLaborConfig(seed=5)).route(net)]
        assert a == b

    def test_dominates_or_ties_salt_everywhere(self):
        """Paper claim: PatLabor's curve is at least as tight as SALT's.

        Checked as: no SALT solution strictly dominates every PatLabor
        solution (SALT never strictly improves on the whole front)."""
        from repro.baselines.salt import salt_sweep

        rng = random.Random(8)
        for _ in range(2):
            net = random_net(15, rng=rng)
            ours = PatLabor().route(net)
            theirs = salt_sweep(net)
            for w, d, _t in theirs:
                assert not all(
                    dominates((w, d), (ow, od)) for ow, od, _ in ours
                )


class TestReassemble:
    def test_spans_and_preserves_subtree_root(self):
        net = random_net(12, rng=random.Random(10))
        sub = Net.from_points(net.source, list(net.sinks[:5]))
        sub_front = pareto_dw(sub)
        rest = list(net.sinks[5:])
        for _w, _d, sub_tree in sub_front:
            full = reassemble(net, sub_tree, rest)
            check_tree(full)

    def test_no_rest_pins(self):
        net = random_net(6, rng=random.Random(11))
        sub_front = pareto_dw(net)
        for _w, _d, sub_tree in sub_front:
            full = reassemble(net, sub_tree, [])
            assert abs(full.wirelength() - sub_tree.wirelength()) < 1e-9


class TestPolicyIntegration:
    def test_custom_policy_is_used(self):
        calls = []

        class Probe(SelectionPolicy):
            def select(self, net, tree, k):
                calls.append(k)
                return super().select(net, tree, k)

        router = PatLabor(policy=Probe(), config=PatLaborConfig(lam=6))
        router.route(random_net(14, rng=random.Random(12)))
        assert calls and all(k == 5 for k in calls)


class TestArrivalReassembly:
    def test_arrival_mode_invariants(self):
        """mode="arrival" trees validate and keep every sink within the
        documented per-sink arrival slack over its L1 bound."""
        from repro.core.patlabor import ARRIVAL_SLACK
        from repro.geometry.point import l1

        rng = random.Random(21)
        for _ in range(5):
            net = random_net(10, rng=rng)
            # A degree-2 skeleton: the direct edge is per-sink shortest,
            # so the arrival invariant must hold for *every* sink.
            sub = Net.from_points(net.source, [net.sinks[0]])
            _w, _d, sub_tree = pareto_dw(sub)[-1]
            rest = list(net.sinks[1:])
            full = reassemble(net, sub_tree, rest, mode="arrival")
            check_tree(full)
            delays = full.sink_delays()
            for sink, arrival in zip(full.net.sinks, delays):
                bound = (1.0 + ARRIVAL_SLACK) * l1(full.net.source, sink)
                assert arrival <= bound + 1e-9, (
                    f"sink {sink} arrives at {arrival}, budget {bound}"
                )

    def test_unknown_mode_raises_value_error(self):
        net = random_net(6, rng=random.Random(22))
        sub = Net.from_points(net.source, [net.sinks[0]])
        _w, _d, sub_tree = pareto_dw(sub)[-1]
        with pytest.raises(ValueError, match="unknown reassembly mode"):
            reassemble(net, sub_tree, list(net.sinks[1:]), mode="bogus")


class TestAttemptKeyDedup:
    def test_key_is_identity_free(self):
        """Regression: the local-search dedup key must not depend on
        ``id(tree)`` — CPython reuses ids after GC, which silently
        suppressed legal moves. Equal-objective trees now share a key."""
        from repro.core.patlabor import _attempt_key

        net = random_net(6, rng=random.Random(23))
        front = pareto_dw(net)
        w, d, tree = front[0]
        clone = tree.copy()
        assert clone is not tree
        sel = (3, 1, 2)
        assert _attempt_key((w, d, tree), sel) == _attempt_key((w, d, clone), sel)
        # Sorted-selection normalisation is preserved...
        assert _attempt_key((w, d, tree), (1, 2, 3)) == _attempt_key((w, d, tree), sel)
        # ...and distinct objectives / selections still get distinct keys.
        assert _attempt_key((w + 1.0, d, tree), sel) != _attempt_key((w, d, tree), sel)
        assert _attempt_key((w, d, tree), (1, 2)) != _attempt_key((w, d, tree), sel)

    def test_local_search_deterministic_across_gc_pressure(self):
        """Same net, same seed => same front, regardless of allocator
        reuse between runs (the failure mode of the id-based key)."""
        import gc

        net = random_net(16, rng=random.Random(24))
        a = PatLabor(config=PatLaborConfig(seed=0)).route(net)
        gc.collect()
        junk = [object() for _ in range(10000)]  # churn the allocator
        del junk
        b = PatLabor(config=PatLaborConfig(seed=0)).route(net)
        assert [(w, d) for w, d, _ in a] == [(w, d) for w, d, _ in b]
