"""Human-readable rendering of the collected metrics.

:func:`span_tree_report` reconstructs the span hierarchy from the recorded
``parent/child`` paths and prints it as an indented tree with call counts,
total time, and percentage of the parent — the ``--profile`` output of the
CLI. :func:`metrics_summary` lists counters, gauges, and timer
percentiles below it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .registry import Registry, get_registry


def _children(paths: List[str], prefix: str) -> List[str]:
    """Direct children of ``prefix`` among the recorded span paths."""
    depth = prefix.count("/") + 1 if prefix else 0
    out = []
    for p in paths:
        if (not prefix or p.startswith(prefix + "/")) and p.count("/") == depth:
            out.append(p)
    return out


def span_tree_report(registry: Optional[Registry] = None) -> str:
    """The span hierarchy as an indented text tree.

    Each line shows the span name, call count, total seconds, and share of
    its parent's total time ("self" time is the parent's unattributed
    remainder, visible as percentages not summing to 100).
    """
    reg = registry or get_registry()
    spans = reg.spans
    if not spans:
        return "span tree: (no spans recorded)"
    paths = sorted(spans)
    lines = ["span tree (count · total · % of parent)"]

    def render(path: str, indent: int, parent_total: Optional[float]) -> None:
        stat = spans[path]
        name = path.rsplit("/", 1)[-1]
        share = (
            f"{100.0 * stat.total / parent_total:5.1f}%"
            if parent_total
            else "  100%"
        )
        lines.append(
            f"{'  ' * indent}{name:<{max(1, 40 - 2 * indent)}} "
            f"{stat.count:>7}x {stat.total:>9.3f}s {share}"
        )
        for child in sorted(
            _children(paths, path), key=lambda p: -spans[p].total
        ):
            render(child, indent + 1, stat.total)

    for root in sorted(_children(paths, ""), key=lambda p: -spans[p].total):
        render(root, 0, None)
    return "\n".join(lines)


def metrics_summary(registry: Optional[Registry] = None) -> str:
    """Counters, gauges, and timer percentiles as aligned text."""
    reg = registry or get_registry()
    snap = reg.snapshot()
    lines: List[str] = []
    counters: Dict[str, float] = snap["counters"]  # type: ignore[assignment]
    gauges: Dict[str, float] = snap["gauges"]  # type: ignore[assignment]
    timers: Dict[str, Dict[str, float]] = snap["timers"]  # type: ignore[assignment]
    if counters:
        lines.append("counters")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name:<44} {value:>12g}")
    if gauges:
        lines.append("gauges")
        for name, value in sorted(gauges.items()):
            lines.append(f"  {name:<44} {value:>12g}")
    if timers:
        lines.append("timers (count · mean · p50 / p90 / p99)")
        for name, st in sorted(timers.items()):
            lines.append(
                f"  {name:<36} {st['count']:>7g}x {st['mean_s']*1e3:>9.3f}ms "
                f"{st['p50_s']*1e3:>8.3f} / {st['p90_s']*1e3:>8.3f} / "
                f"{st['p99_s']*1e3:>8.3f} ms"
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"
