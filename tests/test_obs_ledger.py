"""Tests for the run ledger and the perf-regression diff engine.

Covers record construction, atomic concurrent appends, record resolution
(`latest` / ``-N`` / run-id prefix / baseline file), direction-aware
metric diffing with noise thresholds, and the ``obs diff`` /
``obs check`` CLI surface — including the acceptance contract that a
synthetic regression makes ``obs check`` exit non-zero.
"""

import json
import threading

import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.obs import ledger


@pytest.fixture(autouse=True)
def clean_registry():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _write_run(path, metrics, name="bench", run_id=None):
    record = ledger.make_record(metrics, name=name, run_id=run_id)
    ledger.append_record(record, path)
    return record


class TestRecords:
    def test_record_shape(self, tmp_path):
        rec = ledger.make_record({"nets_per_second": 10.0}, name="unit")
        assert rec["name"] == "unit"
        assert rec["metrics"] == {"nets_per_second": 10.0}
        assert {"sha", "branch"} <= set(rec["git"])
        assert {"python", "platform", "cpu_count", "hostname"} <= set(
            rec["environment"]
        )
        assert rec["run_id"].startswith("r-")

    def test_git_sha_resolves_inside_repo(self):
        info = ledger.git_info()
        # The test runs from the repo; a 40-hex sha must come back.
        assert len(info["sha"]) == 40

    def test_append_and_read_roundtrip(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        first = _write_run(path, {"seconds": 1.0})
        second = _write_run(path, {"seconds": 2.0})
        records = ledger.read_ledger(path)
        assert [r["run_id"] for r in records] == [
            first["run_id"],
            second["run_id"],
        ]

    def test_read_missing_ledger_is_empty(self, tmp_path):
        assert ledger.read_ledger(tmp_path / "absent.jsonl") == []

    def test_concurrent_appends_never_tear_lines(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        n_threads, per_thread = 8, 25

        def writer(tid):
            for i in range(per_thread):
                _write_run(
                    path,
                    {"seconds": float(i)},
                    run_id=f"r-{tid}-{i}",
                )

        threads = [
            threading.Thread(target=writer, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        records = ledger.read_ledger(path)  # raises on any torn JSON line
        assert len(records) == n_threads * per_thread
        assert len({r["run_id"] for r in records}) == n_threads * per_thread

    def test_flatten_snapshot(self):
        obs.enable()
        obs.counter_add("dw.solves", 3)
        obs.gauge_max("dw.max_front_size", 7)
        obs.timer_observe("batch.net_seconds", 0.5)
        with obs.span("patlabor.route"):
            pass
        flat = ledger.flatten_snapshot(obs.snapshot())
        assert flat["dw.solves"] == 3.0
        assert flat["dw.max_front_size"] == 7.0
        assert flat["batch.net_seconds.total_s"] == pytest.approx(0.5)
        assert "patlabor.route.mean_s" in flat


class TestResolve:
    def test_latest_and_negative_indices(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        _write_run(path, {"x": 1.0}, run_id="r-aaa")
        _write_run(path, {"x": 2.0}, run_id="r-bbb")
        assert ledger.resolve_record("latest", ledger_path=path)["run_id"] == "r-bbb"
        assert ledger.resolve_record("-2", ledger_path=path)["run_id"] == "r-aaa"

    def test_run_id_prefix(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        _write_run(path, {"x": 1.0}, run_id="r-abc123")
        assert (
            ledger.resolve_record("r-abc", ledger_path=path)["run_id"]
            == "r-abc123"
        )

    def test_baseline_json_file(self, tmp_path):
        rec = ledger.make_record({"x": 5.0}, run_id="r-base")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(rec))
        resolved = ledger.resolve_record(
            str(baseline), ledger_path=tmp_path / "none.jsonl"
        )
        assert resolved["run_id"] == "r-base"

    def test_unresolvable_specs_raise(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        _write_run(path, {"x": 1.0}, run_id="r-xyz1")
        _write_run(path, {"x": 1.0}, run_id="r-xyz2")
        with pytest.raises(KeyError):
            ledger.resolve_record("r-nope", ledger_path=path)
        with pytest.raises(KeyError):  # ambiguous prefix
            ledger.resolve_record("r-xyz", ledger_path=path)
        with pytest.raises(KeyError):  # out of range
            ledger.resolve_record("-5", ledger_path=path)


class TestDiff:
    def test_direction_inference(self):
        assert ledger.metric_direction("nets_per_second") == "higher"
        assert ledger.metric_direction("cache_hit_rate") == "higher"
        assert ledger.metric_direction("cache.hits") == "higher"
        assert ledger.metric_direction("seconds") == "lower"
        assert ledger.metric_direction("batch.net_seconds.mean_s") == "lower"
        assert ledger.metric_direction("peak_rss_kb") == "lower"
        assert ledger.metric_direction("dw.max_front_size") is None

    def test_negotiation_metric_directions(self):
        # The negotiate.* family (repro.congestion.negotiate): fewer
        # passes, less overuse/delay/wire are improvements; the saving
        # rate reads higher-is-better via the _rate rule despite also
        # containing "wirelength".
        assert ledger.metric_direction("negotiate.final_overuse") == "lower"
        assert ledger.metric_direction("negotiate.iterations") == "lower"
        assert ledger.metric_direction("negotiate.worst_delay") == "lower"
        assert (
            ledger.metric_direction("negotiate.total_wirelength") == "lower"
        )
        assert ledger.metric_direction("baseline.iterations") == "lower"
        assert (
            ledger.metric_direction("negotiate.wirelength_saving_rate")
            == "higher"
        )

    def test_throughput_drop_is_a_regression(self):
        deltas = ledger.diff_metrics(
            {"nets_per_second": 100.0}, {"nets_per_second": 80.0}
        )
        (d,) = deltas
        assert d.regressed and not d.improved
        assert d.rel_delta == pytest.approx(-0.2)

    def test_small_moves_stay_inside_noise_threshold(self):
        deltas = ledger.diff_metrics(
            {"seconds": 1.00, "nets_per_second": 100.0},
            {"seconds": 1.05, "nets_per_second": 97.0},
        )
        assert ledger.regressions(deltas) == []

    def test_timing_increase_beyond_threshold_regresses(self):
        (d,) = ledger.diff_metrics({"seconds": 1.0}, {"seconds": 1.5})
        assert d.regressed

    def test_improvement_flagged_not_regressed(self):
        (d,) = ledger.diff_metrics({"seconds": 2.0}, {"seconds": 1.0})
        assert d.improved and not d.regressed

    def test_per_metric_threshold_override(self):
        base, new = {"cache_hit_rate": 0.60}, {"cache_hit_rate": 0.57}
        assert ledger.regressions(ledger.diff_metrics(base, new)) == []
        strict = ledger.diff_metrics(
            base, new, overrides={"cache_hit_rate": 0.01}
        )
        assert [d.name for d in ledger.regressions(strict)] == ["cache_hit_rate"]

    def test_tiny_absolute_deltas_ignored(self):
        (d,) = ledger.diff_metrics({"seconds": 1e-7}, {"seconds": 2e-7})
        assert not d.regressed  # 100% relative but below the absolute floor

    def test_metrics_on_one_side_only_skipped(self):
        deltas = ledger.diff_metrics({"a_seconds": 1.0}, {"b_seconds": 1.0})
        assert deltas == []

    def test_render_diff_mentions_regression(self):
        deltas = ledger.diff_metrics({"seconds": 1.0}, {"seconds": 2.0})
        text = ledger.render_diff(deltas)
        assert "REGRESSED" in text and "seconds" in text


class TestCli:
    def _seed_ledger(self, tmp_path, base_metrics, new_metrics):
        path = tmp_path / "ledger.jsonl"
        _write_run(path, base_metrics, run_id="r-base")
        _write_run(path, new_metrics, run_id="r-new")
        return path

    def test_obs_diff_reports_deltas(self, tmp_path, capsys):
        path = self._seed_ledger(
            tmp_path,
            {"nets_per_second": 100.0, "seconds": 2.0},
            {"nets_per_second": 120.0, "seconds": 1.7},
        )
        rc = cli_main(["obs", "diff", "-2", "latest", "--ledger", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "nets_per_second" in out and "+20" in out
        assert "improved" in out

    def test_obs_check_fails_on_synthetic_regression(self, tmp_path, capsys):
        """The acceptance contract: a regressed metric beyond threshold
        makes ``obs check --baseline`` exit non-zero."""
        baseline = ledger.make_record(
            {"nets_per_second": 100.0, "seconds": 2.0}, run_id="r-base"
        )
        baseline_file = tmp_path / "baseline.json"
        baseline_file.write_text(json.dumps(baseline))
        path = tmp_path / "ledger.jsonl"
        _write_run(  # 40% throughput collapse: way past the 10% threshold
            path, {"nets_per_second": 60.0, "seconds": 2.05}, run_id="r-new"
        )
        rc = cli_main(
            ["obs", "check", "--baseline", str(baseline_file),
             "--ledger", str(path)]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "FAIL" in out and "nets_per_second" in out

    def test_obs_check_passes_within_noise(self, tmp_path, capsys):
        baseline = ledger.make_record(
            {"nets_per_second": 100.0, "seconds": 2.0}, run_id="r-base"
        )
        baseline_file = tmp_path / "baseline.json"
        baseline_file.write_text(json.dumps(baseline))
        path = tmp_path / "ledger.jsonl"
        _write_run(
            path, {"nets_per_second": 96.0, "seconds": 2.08}, run_id="r-new"
        )
        rc = cli_main(
            ["obs", "check", "--baseline", str(baseline_file),
             "--ledger", str(path)]
        )
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_obs_check_missing_baseline_is_usage_error(self, tmp_path, capsys):
        rc = cli_main(
            ["obs", "check", "--baseline", "r-ghost",
             "--ledger", str(tmp_path / "ledger.jsonl")]
        )
        assert rc == 2

    def test_obs_ledger_lists_runs(self, tmp_path, capsys):
        path = self._seed_ledger(
            tmp_path, {"nets_per_second": 1.0}, {"nets_per_second": 2.0}
        )
        rc = cli_main(["obs", "ledger", "--ledger", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "r-base" in out and "r-new" in out
