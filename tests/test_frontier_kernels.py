"""Sorted-front kernels agree exactly with the naive Pareto references.

Two layers of evidence:

* property tests (hypothesis) that every kernel of
  :mod:`repro.core.frontier` returns the same result as the
  enumerate-and-sort operators of :mod:`repro.core.pareto` on random
  inputs — including duplicate objectives, singletons, and empty fronts;
* deterministic floating-point collision cases (IEEE addition is
  monotone but not strictly monotone, so ``w1 + x == w2 + x`` can hold
  for ``w1 != w2``) pinned with ``math.nextafter``;
* a regression matrix that ``pareto_dw(kernels=True)`` returns the same
  ``(w, d)`` frontier as the ``kernels=False`` reference path on degree
  2–9 nets across every Lemma flag combination.

Objective values are drawn from a small pool of integers and non-dyadic
floats so exact ties and rounding collisions occur often instead of
almost never.
"""

import math
import random
from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frontier import (
    assert_sorted_front,
    cross_merge_sorted,
    cross_sorted,
    is_sorted_front,
    merge_shifted,
    merge_sorted_fronts,
    pareto_filter_sorted,
    shift_sorted,
)
from repro.core.pareto import (
    count_on_frontier,
    cross,
    epsilon_indicator,
    is_pareto_front,
    objectives,
    pareto_filter,
    shift,
    weakly_dominates,
)
from repro.core.pareto_dw import pareto_dw
from repro.geometry.net import random_net

# Small value pool => frequent exact ties; 0.1/0.3 are non-dyadic, so
# sums exercise rounding.
coord = st.one_of(
    st.integers(0, 8).map(float),
    st.sampled_from([0.1, 0.3, 1.7, 2.5, 3.3, 10.1]),
)

few = settings(max_examples=200, deadline=None)


@st.composite
def solution_lists(draw, max_size=12):
    """Arbitrary (unsorted, duplicate-laden) solution lists.

    Payloads are distinct indices so tie-breaking rules are observable.
    """
    n = draw(st.integers(0, max_size))
    return [
        (draw(coord), draw(coord), idx) for idx in range(n)
    ]


@st.composite
def fronts(draw, max_size=12):
    """Sorted fronts, as produced by ``pareto_filter``."""
    return pareto_filter(draw(solution_lists(max_size=max_size)))


# ------------------------------------------------------------ invariants


class TestInvariantChecks:
    def test_empty_and_singleton_are_sorted(self):
        assert is_sorted_front([])
        assert is_sorted_front([(1.0, 2.0, None)])

    def test_rejects_non_strict(self):
        assert not is_sorted_front([(1.0, 2.0, None), (1.0, 1.0, None)])
        assert not is_sorted_front([(1.0, 2.0, None), (2.0, 2.0, None)])
        assert not is_sorted_front([(2.0, 1.0, None), (1.0, 2.0, None)])

    def test_assert_sorted_front_passes_through(self):
        front = [(0.0, 3.0, "a"), (1.0, 1.0, "b")]
        assert assert_sorted_front(front, "t") is front

    def test_assert_sorted_front_raises_with_label(self):
        with pytest.raises(AssertionError, match="bad-front"):
            assert_sorted_front(
                [(1.0, 1.0, None), (1.0, 0.0, None)], "bad-front"
            )

    @few
    @given(solution_lists())
    def test_pareto_filter_output_is_sorted(self, sols):
        assert is_sorted_front(pareto_filter(sols))


# -------------------------------------------------------------- filtering


class TestParetoFilterSorted:
    @few
    @given(solution_lists())
    def test_matches_pareto_filter_exactly(self, sols):
        # Tuple-exact: same objectives *and* same surviving payloads.
        assert pareto_filter_sorted(sols) == pareto_filter(sols)

    @few
    @given(fronts())
    def test_sorted_input_is_a_fixpoint(self, front):
        assert pareto_filter_sorted(front) == front

    @few
    @given(fronts())
    def test_subsequence_fast_path(self, front):
        # Subsequences of a sorted front stay sorted — the linear fast
        # path of the KS truncation — and filtering them is a no-op.
        sub = front[::2]
        assert pareto_filter_sorted(sub) == sub


# ------------------------------------------------------------------ shift


class TestShiftSorted:
    @few
    @given(fronts(), coord)
    def test_matches_shift_then_filter(self, front, x):
        assert shift_sorted(front, x) == pareto_filter(shift(front, x))

    @few
    @given(fronts(), coord)
    def test_rewrap_applied_to_survivors(self, front, x):
        mark = lambda s: ("ext", s[2])
        assert shift_sorted(front, x, mark) == pareto_filter(
            shift(front, x, mark)
        )

    def test_w_collision_keeps_smaller_delay(self):
        w = 1293.2694644882506
        w2 = math.nextafter(w, math.inf)
        off = 96.61455694252402
        assert w != w2 and w + off == w2 + off  # the rounding collision
        front = [(w, 2.0, "hi"), (w2, 1.0, "lo")]
        out = shift_sorted(front, off)
        assert out == pareto_filter(shift(front, off))
        assert out == [(w + off, 1.0 + off, "lo")]

    def test_d_collision_keeps_earlier_point(self):
        d_lo = 1293.2694644882506
        d_hi = math.nextafter(d_lo, math.inf)
        off = 96.61455694252402
        assert d_lo != d_hi and d_lo + off == d_hi + off
        front = [(1.0, d_hi, "early"), (2.0, d_lo, "late")]
        out = shift_sorted(front, off)
        assert out == pareto_filter(shift(front, off))
        assert out == [(1.0 + off, d_hi + off, "early")]


# ------------------------------------------------------------------ cross


def _naive_product(s1, s2):
    """The unfiltered a*b merge-product candidate list."""
    return [
        (w1 + w2, max(d1, d2), (p1, p2))
        for w1, d1, p1 in s1
        for w2, d2, p2 in s2
    ]


class TestCrossSorted:
    @few
    @given(fronts(max_size=8), fronts(max_size=8))
    def test_objectives_match_naive_cross(self, s1, s2):
        got = cross_sorted(s1, s2)
        assert objectives(got) == objectives(cross(s1, s2))
        assert is_sorted_front(got)

    @few
    @given(fronts(max_size=8), fronts(max_size=8))
    def test_payloads_are_attaining_pairs(self, s1, s2):
        # On objective-equal ties the surviving payload may differ from
        # the enumeration-order reference, but it must still be a pair
        # of input payloads that attains the output point exactly.
        by_payload1 = {p: (w, d) for w, d, p in s1}
        by_payload2 = {p: (w, d) for w, d, p in s2}
        for w, d, (p1, p2) in cross_sorted(s1, s2):
            w1, d1 = by_payload1[p1]
            w2, d2 = by_payload2[p2]
            assert w == w1 + w2 and d == max(d1, d2)

    @few
    @given(fronts(max_size=8), fronts(max_size=8))
    def test_combine_callback(self, s1, s2):
        got = cross_sorted(s1, s2, lambda a, b: a * 100 + b)
        assert objectives(got) == objectives(cross(s1, s2))

    @few
    @given(fronts(max_size=8))
    def test_empty_operand(self, s1):
        assert cross_sorted(s1, []) == []
        assert cross_sorted([], s1) == []

    def test_output_bounded_by_a_plus_b_minus_1(self):
        # Paper, Section IV-A: |S ⊕ S'| <= a + b - 1.
        rng = random.Random(7)
        for _ in range(50):
            s1 = pareto_filter(
                [(rng.random(), rng.random(), i) for i in range(9)]
            )
            s2 = pareto_filter(
                [(rng.random(), rng.random(), i) for i in range(9)]
            )
            if s1 and s2:
                assert len(cross_sorted(s1, s2)) <= len(s1) + len(s2) - 1

    def test_w_collision_emits_single_point(self):
        w = 1293.2694644882506
        w2 = math.nextafter(w, math.inf)
        x = 96.61455694252402
        assert w + x == w2 + x
        s1 = [(w, 2.0, "a"), (w2, 1.0, "b")]
        s2 = [(x, 0.5, "c")]
        got = cross_sorted(s1, s2)
        assert objectives(got) == objectives(cross(s1, s2))
        assert got == [(w + x, 1.0, ("b", "c"))]


class TestCrossMergeSorted:
    @few
    @given(fronts(max_size=8), fronts(max_size=8), fronts(max_size=8))
    def test_matches_union_of_acc_and_product(self, acc, s1, s2):
        got, allocated = cross_merge_sorted(acc, s1, s2)
        # acc listed first => pareto_filter's first-encountered rule
        # prefers acc on ties, like the kernel does.
        ref = pareto_filter(list(acc) + _naive_product(s1, s2))
        assert objectives(got) == objectives(ref)
        assert is_sorted_front(got)
        assert 0 <= allocated <= len(s1) * len(s2)

    @few
    @given(fronts(max_size=8), fronts(max_size=8), fronts(max_size=8))
    def test_surviving_acc_tuples_are_reused(self, acc, s1, s2):
        got, _ = cross_merge_sorted(acc, s1, s2)
        acc_ids = {id(s) for s in acc}
        for s in got:
            if id(s) in acc_ids:
                continue
            # Everything else was allocated from the product stream.
            assert isinstance(s[2], tuple) and len(s[2]) == 2

    @few
    @given(fronts(max_size=8), fronts(max_size=8))
    def test_empty_acc_equals_cross_sorted(self, s1, s2):
        got, allocated = cross_merge_sorted([], s1, s2)
        assert got == cross_sorted(s1, s2)
        assert allocated == len(got)

    @few
    @given(fronts(max_size=8), fronts(max_size=8))
    def test_empty_operand_returns_acc_copy(self, acc, s1):
        got, allocated = cross_merge_sorted(acc, s1, [])
        assert got == list(acc) and allocated == 0


# ------------------------------------------------------------------ union


class TestMergeSortedFronts:
    @few
    @given(st.lists(fronts(max_size=8), max_size=4))
    def test_matches_filter_of_concatenation(self, front_list):
        combined = [s for f in front_list for s in f]
        # Tuple-exact: ties resolve to the earlier front, matching the
        # first-encountered rule of pareto_filter.
        assert merge_sorted_fronts(*front_list) == pareto_filter(combined)

    @few
    @given(fronts())
    def test_identity_and_empty(self, front):
        assert merge_sorted_fronts(front) == front
        assert merge_sorted_fronts() == []
        assert merge_sorted_fronts([], front, []) == front


class TestMergeShifted:
    @staticmethod
    def _reference(runs, rewrap):
        bucket = []
        for off, cands, tag in runs:
            for s in cands:
                payload = rewrap(tag, s) if tag is not None else s[2]
                bucket.append((s[0] + off, s[1] + off, payload))
        return pareto_filter(bucket)

    @few
    @given(
        st.lists(
            st.tuples(coord, fronts(max_size=8), st.sampled_from([None, 1, 2])),
            max_size=4,
        )
    )
    def test_matches_shift_then_filter(self, runs):
        rewrap = lambda tag, s: ("ext", tag, s[2])
        got, allocated = merge_shifted(runs, rewrap)
        # Tuple-exact, including rewrapped payloads and tie resolution.
        assert got == self._reference(runs, rewrap)
        total = sum(len(c) for _, c, _ in runs)
        assert 0 <= allocated <= total

    @few
    @given(fronts())
    def test_identity_run_reuses_tuples(self, front):
        got, allocated = merge_shifted([(0.0, front, None)])
        assert got == front
        assert allocated == 0
        assert all(a is b for a, b in zip(got, front))

    def test_w_collision_within_a_run(self):
        w = 1293.2694644882506
        w2 = math.nextafter(w, math.inf)
        off = 96.61455694252402
        assert w + off == w2 + off
        runs = [(off, [(w, 2.0, "hi"), (w2, 1.0, "lo")], None)]
        got, _ = merge_shifted(runs)
        assert got == self._reference(runs, lambda t, s: None)
        assert got == [(w + off, 1.0 + off, "lo")]

    def test_dominated_run_is_skipped_without_allocating(self):
        acc_run = (0.0, [(0.0, 0.0, "best")], None)
        dominated = (5.0, [(1.0, 4.0, "x"), (2.0, 3.0, "y")], None)
        got, allocated = merge_shifted([acc_run, dominated])
        assert got == [(0.0, 0.0, "best")]
        assert allocated == 0


# --------------------------------------------------- metric satellites


class TestIsParetoFront:
    @staticmethod
    def _naive(solutions):
        objs = objectives(solutions)
        return not any(
            weakly_dominates(objs[i], objs[j])
            for i in range(len(objs))
            for j in range(len(objs))
            if i != j
        )

    @few
    @given(solution_lists())
    def test_matches_pairwise_reference(self, sols):
        assert is_pareto_front(sols) == self._naive(sols)

    def test_duplicates_are_not_a_front(self):
        assert not is_pareto_front([(1.0, 1.0, "a"), (1.0, 1.0, "b")])

    @few
    @given(solution_lists())
    def test_filter_output_is_a_front(self, sols):
        front = pareto_filter(sols)
        assert is_pareto_front(front)


class TestEpsilonIndicator:
    @staticmethod
    def _naive(candidate, reference):
        if not reference:
            return 1.0
        if not candidate:
            return float("inf")
        worst = 1.0
        for rw, rd in objectives(reference):
            best = float("inf")
            for cw, cd in objectives(candidate):
                fw = (
                    1.0
                    if cw <= rw == 0
                    else (cw / rw if rw > 0 else float("inf"))
                )
                fd = (
                    1.0
                    if cd <= rd == 0
                    else (cd / rd if rd > 0 else float("inf"))
                )
                best = min(best, max(fw, fd, 1.0))
            worst = max(worst, best)
        return worst

    @few
    @given(solution_lists(max_size=10), solution_lists(max_size=10))
    def test_matches_full_scan(self, candidate, reference):
        # Exact equality: the binary search evaluates the same divisions
        # at the same points; zero coordinates take the fallback path.
        assert epsilon_indicator(candidate, reference) == self._naive(
            candidate, reference
        )

    def test_empty_cases(self):
        assert epsilon_indicator([], []) == 1.0
        assert epsilon_indicator([(1.0, 1.0, None)], []) == 1.0
        assert epsilon_indicator([], [(1.0, 1.0, None)]) == float("inf")


class TestCountOnFrontier:
    @staticmethod
    def _naive(candidate, frontier, tol):
        found = 0
        for fw, fd in objectives(frontier):
            for cw, cd in objectives(candidate):
                if abs(cw - fw) <= tol and abs(cd - fd) <= tol:
                    found += 1
                    break
        return found

    @few
    @given(
        solution_lists(max_size=10),
        solution_lists(max_size=10),
        st.sampled_from([0.0, 1e-9, 0.05, 0.5]),
    )
    def test_matches_nested_scan(self, candidate, frontier, tol):
        assert count_on_frontier(candidate, frontier, tol=tol) == self._naive(
            candidate, frontier, tol
        )


# ---------------------------------------------- pareto_dw regression


LEMMA_COMBOS = list(product([False, True], repeat=3))


class TestParetoDWKernelEquivalence:
    """kernels=True and kernels=False return identical (w, d) frontiers."""

    @pytest.mark.parametrize("degree", range(2, 10))
    def test_identical_frontier_across_lemma_flags(self, degree):
        # Small spans keep exact integer arithmetic out of play: real
        # float coordinates exercise the rounding-collision handling.
        net = random_net(
            degree, rng=random.Random(1000 + degree), grid=9, span=90.0
        )
        for lemma2, lemma3, lemma4 in LEMMA_COMBOS:
            kw = dict(
                lemma2=lemma2, lemma3=lemma3, lemma4=lemma4, with_trees=False
            )
            fast = pareto_dw(net, kernels=True, **kw)
            ref = pareto_dw(net, kernels=False, **kw)
            assert objectives(fast) == objectives(ref), (
                f"degree={degree} lemmas={(lemma2, lemma3, lemma4)}"
            )

    @pytest.mark.parametrize("degree", [4, 6, 8])
    def test_identical_frontier_with_trees(self, degree):
        net = random_net(
            degree, rng=random.Random(2000 + degree), grid=9, span=90.0
        )
        fast = pareto_dw(net, kernels=True, with_trees=True)
        ref = pareto_dw(net, kernels=False, with_trees=True)
        assert objectives(fast) == objectives(ref)
        # Payload trees must attain (or weakly dominate) the objectives.
        for w, d, tree in fast:
            tw, td = tree.objective()
            assert tw <= w + 1e-9 and td <= d + 1e-9

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_multiple_seeds_degree_7(self, seed):
        net = random_net(7, rng=random.Random(seed), grid=9, span=90.0)
        fast = pareto_dw(net, kernels=True, with_trees=False)
        ref = pareto_dw(net, kernels=False, with_trees=False)
        assert objectives(fast) == objectives(ref)
