"""Theoretical-results verification: Theorems 1, 2, 5 and Fig. 6."""

from .frontier_stats import (
    DegreeFrontierStats,
    Fig6Result,
    fig6_experiment,
    frontier_sizes,
)
from .generalization import (
    GeneralizationRow,
    generalization_experiment,
    policy_performance,
)
from .smoothed import (
    FrontierSizeRow,
    clustered_net,
    frontier_size_experiment,
    linear_fit,
    smoothed_net,
)
from .theorem1 import (
    all_combination_objectives,
    combination_tree,
    exponential_instance,
    gadget_specs,
    verify_antichain,
)

__all__ = [
    "DegreeFrontierStats",
    "Fig6Result",
    "FrontierSizeRow",
    "GeneralizationRow",
    "all_combination_objectives",
    "clustered_net",
    "combination_tree",
    "exponential_instance",
    "fig6_experiment",
    "frontier_size_experiment",
    "frontier_sizes",
    "gadget_specs",
    "generalization_experiment",
    "linear_fit",
    "policy_performance",
    "smoothed_net",
    "verify_antichain",
]
