"""Translation vs symmetry canonicalization in the engine cache.

Not a paper artefact: this benchmark quantifies what PR 4's
symmetry-canonicalizing cache buys over the original translation-only
keying. Routed macro patterns recur under the 8 dihedral symmetries
(mirrored placements, rotated pin escapes), so a workload of base nets
plus rigid translates *and* dihedral copies is routed twice through
``CachedRouter(PatLabor(), canonicalize=mode)`` — once per mode — and
the hit rates are compared.

A third pass measures the **persistent tier** (PR 7): the same workload
is routed by a symmetry cache backed by a
:class:`~repro.core.cache_store.PersistentStore`, then replayed through
a *fresh* router (empty LRU — a new process) over the same store file.
Every canonical pattern must come back from disk, bit-identical.

Emits

* ``results/engine_cache.txt`` — the per-mode hit-rate table,
* ``results/BENCH_engine_cache.json`` — counters and hit rates,
* ``results/ledger.jsonl`` — one appended ``engine_cache`` run record
  with both hit rates, for ``repro obs diff`` / ``repro obs check``.

Asserted shape: both modes hit every pure translate; only the symmetry
mode hits the dihedral copies, so its hit rate is *strictly* higher;
every front served off a symmetry hit is objective-identical to a cold
route of that copy; and the fresh-process replay over the store routes
nothing at all (store hit rate 1.0, fronts bit-identical).
"""

import json
import random
import tempfile
from pathlib import Path

from repro import Net, obs
from repro.core.cache import CachedRouter
from repro.core.patlabor import PatLabor
from repro.geometry.net import random_net
from repro.geometry.point import Point
from repro.geometry.transforms import ALL_TRANSFORMS

from conftest import RESULTS_DIR, write_artifact

BASE_NETS = 24          # distinct base patterns
TRANSLATES_PER_NET = 1  # rigid translates per base net
DIHEDRAL_PER_NET = 3    # non-identity dihedral copies per base net


def _dihedral_copy(net, transform, dx, dy, name):
    """The net's image under a D4 element about its source, then a shift."""
    x0, y0 = net.source
    pins = []
    for p in net.pins:
        cx, cy = transform.apply_point(p.x - x0, p.y - y0)
        pins.append(Point(cx + x0 + dx, cy + y0 + dy))
    return Net(pins=tuple(pins), name=name)


def _workload():
    """Base nets, each followed by its translates and dihedral copies."""
    rng = random.Random(2026)
    nets = []
    dihedral = 0
    for i in range(BASE_NETS):
        base = random_net(rng.randint(4, 8), rng=rng, name=f"base{i}")
        nets.append(base)
        for k in range(1, TRANSLATES_PER_NET + 1):
            moved = base.translated(1000.0 * k, 500.0 * k)
            nets.append(
                Net.from_points(
                    moved.source, list(moved.sinks), name=f"base{i}/t{k}"
                )
            )
        # Non-identity elements, cycled so every one is exercised.
        for k in range(DIHEDRAL_PER_NET):
            t = ALL_TRANSFORMS[1 + (i + k) % (len(ALL_TRANSFORMS) - 1)]
            nets.append(
                _dihedral_copy(
                    base, t, 700.0 * (k + 1), -300.0 * (k + 1),
                    name=f"base{i}/{t.name}{k}",
                )
            )
            dihedral += 1
    return nets, dihedral


def test_engine_cache_hit_rates():
    nets, dihedral = _workload()
    translates = BASE_NETS * TRANSLATES_PER_NET

    obs.reset()
    obs.enable()
    stats = {}
    try:
        for mode in ("translation", "symmetry"):
            cache = CachedRouter(PatLabor(), canonicalize=mode)
            fronts = {net.name: cache.route(net) for net in nets}
            stats[mode] = {
                "hits": cache.hits,
                "misses": cache.misses,
                "hit_rate": cache.hit_rate,
                "fronts": fronts,
            }
    finally:
        obs.disable()

    # Both modes serve every pure translate from cache.
    assert stats["translation"]["hits"] == translates
    # Symmetry additionally serves every dihedral copy: only base nets miss.
    assert stats["symmetry"]["misses"] == BASE_NETS
    assert stats["symmetry"]["hits"] == translates + dihedral
    assert stats["symmetry"]["hit_rate"] > stats["translation"]["hit_rate"]

    # Transparency spot-check: fronts served off symmetry hits match a
    # cold route of the copy, objective for objective. Rounded: cached
    # objectives were summed at the base net's coordinates, so the last
    # ulp can differ from a sum at the copy's shifted coordinates.
    cold = PatLabor()
    for net in random.Random(7).sample(nets[1:], 8):
        served = stats["symmetry"]["fronts"][net.name]
        expect = cold.route(net)
        assert [(round(w, 6), round(d, 6)) for w, d, _ in served] == [
            (round(w, 6), round(d, 6)) for w, d, _ in expect
        ]

    # Persistent tier: populate a store, then replay the workload through
    # a fresh router (empty LRU = new process) over the same file. Every
    # memory miss must be served from disk, bit-identically.
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        db = Path(tmp) / "store.sqlite"
        writer = CachedRouter(PatLabor(), canonicalize="symmetry", store=db)
        for net in nets:
            writer.route(net)
        writer.close()
        fresh = CachedRouter(PatLabor(), canonicalize="symmetry", store=db)
        replayed = {net.name: fresh.route(net) for net in nets}
        stats["store"] = {
            "hits": fresh.hits,
            "misses": fresh.misses,
            "store_hits": fresh.store_hits,
            "hit_rate": fresh.hit_rate,
            "store_hit_rate": fresh.store_hit_rate,
        }
        fresh.close()
    # The fresh process never routed: every unique pattern came off disk
    # (one store hit per base net), repeats off the re-warmed memory LRU.
    assert stats["store"]["misses"] == 0
    assert stats["store"]["store_hits"] == BASE_NETS
    assert stats["store"]["store_hit_rate"] == 1.0
    for net in nets:
        served = replayed[net.name]
        warm = stats["symmetry"]["fronts"][net.name]
        assert [
            (w, d, tuple((p.x, p.y) for p in t.points), tuple(t.parent))
            for w, d, t in served
        ] == [
            (w, d, tuple((p.x, p.y) for p in t.points), tuple(t.parent))
            for w, d, t in warm
        ], net.name

    rows = [
        f"{'mode':<14}{'hits':>8}{'misses':>8}{'hit rate':>10}",
        "-" * 40,
    ]
    for mode in ("translation", "symmetry"):
        s = stats[mode]
        rows.append(
            f"{mode:<14}{s['hits']:>8}{s['misses']:>8}{s['hit_rate']:>10.3f}"
        )
    s = stats["store"]
    rows.append(
        f"{'store replay':<14}{s['hits'] + s['store_hits']:>8}"
        f"{s['misses']:>8}{s['hit_rate']:>10.3f}"
        f"   ({s['store_hits']} from disk)"
    )
    rows.append(
        f"\nworkload: {BASE_NETS} base nets, {translates} translates, "
        f"{dihedral} dihedral copies ({len(nets)} total)"
    )
    write_artifact("engine_cache.txt", "\n".join(rows))

    path = obs.write_bench_json(
        "engine_cache",
        directory=RESULTS_DIR,
        extra={
            "workload": {
                "nets": len(nets),
                "base_nets": BASE_NETS,
                "translates": translates,
                "dihedral_copies": dihedral,
            },
            "translation_hit_rate": stats["translation"]["hit_rate"],
            "symmetry_hit_rate": stats["symmetry"]["hit_rate"],
            "store_hit_rate": stats["store"]["store_hit_rate"],
        },
    )
    payload = json.loads(path.read_text())
    assert payload["symmetry_hit_rate"] > payload["translation_hit_rate"]
    print(f"\n[metrics written to {path}]")

    record = obs.make_record(
        {
            "translation_hit_rate": stats["translation"]["hit_rate"],
            "translation_hits": stats["translation"]["hits"],
            "symmetry_hit_rate": stats["symmetry"]["hit_rate"],
            "symmetry_hits": stats["symmetry"]["hits"],
            "cache.misses": stats["symmetry"]["misses"],
            "store_replay_hit_rate": stats["store"]["store_hit_rate"],
        },
        name="engine_cache",
        config={
            "base_nets": BASE_NETS,
            "translates_per_net": TRANSLATES_PER_NET,
            "dihedral_per_net": DIHEDRAL_PER_NET,
        },
    )
    ledger_path = obs.append_record(record, RESULTS_DIR / "ledger.jsonl")
    print(f"[run {record['run_id']} appended to {ledger_path}]")
    obs.reset()
