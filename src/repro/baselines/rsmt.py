"""FLUTE-substitute RSMT engine: exact for small nets, divide-and-conquer above.

FLUTE itself is "lookup-table exact below degree 9, recursive net breaking
above"; this module honours the same contract with pure-Python machinery:

* ``degree <= exact_limit`` — exact Hanan-grid Dreyfus–Wagner,
* larger nets — Kalpakis–Sherman-style median splitting down to exact base
  cases, tree union at the shared split pin, then a reattachment refinement
  pass that removes most of the splitting artefacts.

The engine provides PatLabor's seed tree (step 1 of the local search) and
the ``w(FLUTE)`` normalisation of Figure 7.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..geometry.net import Net
from ..geometry.point import Point, l1
from ..routing.attach import TreeBuilder, grow_from_source
from ..routing.tree import RoutingTree
from .dreyfus_wagner import steiner_min_tree

DEFAULT_EXACT_LIMIT = 8


def rsmt(net: Net, exact_limit: int = DEFAULT_EXACT_LIMIT, refine_passes: int = 2) -> RoutingTree:
    """A low-wirelength rectilinear Steiner tree for ``net``.

    Exact for ``net.degree <= exact_limit``; a refined divide-and-conquer
    heuristic above (typically within a few percent of optimal).
    """
    if net.degree <= exact_limit:
        return steiner_min_tree(net, max_terminals=exact_limit)
    points = list(net.pins)
    edges = _dc_edges(points, axis=0, exact_limit=exact_limit)
    tree = RoutingTree.from_edges(net, edges)
    for _ in range(refine_passes):
        improved, tree = refine_wirelength(tree)
        if not improved:
            break
    return tree


def _dc_edges(
    points: List[Point], axis: int, exact_limit: int
) -> List[Tuple[Point, Point]]:
    """Edge set of a Steiner tree over ``points`` by median splitting."""
    if len(points) <= exact_limit:
        sub = Net.from_points(points[0], points[1:], name="rsmt/base")
        t = steiner_min_tree(sub, max_terminals=exact_limit)
        return [
            (t.points[i], t.points[p])
            for i, p in t.edges()
            if t.points[i] != t.points[p]
        ]
    ordered = sorted(points, key=lambda p: (p[axis], p[1 - axis]))
    k = len(ordered) // 2
    left = ordered[: k + 1]
    right = ordered[k:]
    return _dc_edges(left, 1 - axis, exact_limit) + _dc_edges(
        right, 1 - axis, exact_limit
    )


def reattach_leaf(tree: RoutingTree, leaf: int) -> Optional[RoutingTree]:
    """Detach leaf pin ``leaf`` and re-insert it at its cheapest connection.

    Returns the improved tree, or ``None`` when no strict improvement
    exists. The leaf must be a pin with no children.
    """
    net = tree.net
    old_cost = tree.edge_length(leaf)
    compact = tree.compacted()
    # Work on the compacted tree: find the leaf there by coordinates.
    target = compact.points[:compact.net.degree].index(tree.points[leaf])
    if any(p == target for p in compact.parent):
        return None  # not a leaf after compaction (it became a through node)
    builder = TreeBuilder(compact.points[0])
    # Seed the builder with every edge except the leaf's own, in topological
    # order so parents exist before children.
    index_map = {0: 0}
    for u in compact.topological_order():
        p = compact.parent[u]
        if p < 0 or u == target:
            continue
        index_map[u] = builder.attach_to_node(compact.points[u], index_map[p])
    cost, _, _, _ = builder.best_connection(compact.points[target])
    if cost >= old_cost - 1e-12:
        return None
    builder.attach(compact.points[target])
    return builder.finish(net).compacted()


def refine_wirelength(tree: RoutingTree) -> Tuple[bool, RoutingTree]:
    """One refinement pass: leaf reattachment plus a greedy rebuild probe.

    Detaches each leaf pin and re-inserts it at its cheapest Steiner
    connection, which removes most divide-and-conquer splitting artefacts;
    also probes a full greedy regrowth and keeps whichever tree is
    lightest.
    """
    net = tree.net
    best = tree
    improved = False
    for leaf in range(1, net.degree):
        if any(p == leaf for p in best.parent):
            continue  # pin has children; moving it would move its subtree
        candidate = reattach_leaf(best, leaf)
        if candidate is not None and candidate.wirelength() < best.wirelength() - 1e-12:
            best = candidate
            improved = True
    order = sorted(
        range(len(net.sinks)), key=lambda i: l1(net.source, net.sinks[i])
    )
    rebuilt = grow_from_source(net, order=order)
    if rebuilt.wirelength() < best.wirelength() - 1e-12:
        best = rebuilt
        improved = True
    return improved, best


def rsmt_wirelength(net: Net, exact_limit: int = DEFAULT_EXACT_LIMIT) -> float:
    """Wirelength of the engine's tree (Fig. 7's ``w(FLUTE)`` reference)."""
    return rsmt(net, exact_limit=exact_limit).wirelength()
