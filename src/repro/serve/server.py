"""The routing daemon: an asyncio front-end over a shared-LUT worker pool.

``repro serve`` turns the per-invocation CLI into **routing as a
service**: one resident process accepts batched JSON route requests over
a Unix socket and/or TCP, dispatches nets to a ``ProcessPoolExecutor``
whose workers each built their engine exactly once
(:mod:`repro.serve.pool`), and answers with Pareto fronts — so repeated
traffic pays neither interpreter start-up, nor lookup-table parsing, nor
re-routing of patterns the cache tiers already hold.

Request lifecycle (see ``docs/architecture.md`` for the full diagram)::

    client ── JSON line ──> asyncio reader ──> dispatch ──> worker pool
                                                             (resident
                                                              engine)
    client <── JSON line ── writer  <── gather  <── per-net futures

Throughput accounting rides :mod:`repro.obs` (no-op unless enabled):
``serve.requests`` / ``serve.nets`` counters, per-tier
``serve.served_{memory,store,routed}`` counters, a
``serve.request_seconds`` timer per request, and a
``serve.queue_depth_max`` gauge. The same numbers are always available —
obs enabled or not — through the ``stats`` op and :meth:`RouteServer.stats`,
which is how the benchmark publishes ``serve.requests_per_second`` and
``cache.store_hit_rate`` to the run ledger.

Live telemetry (PR 8) adds an always-on layer the enabled flag does not
gate, because it is how the daemon is *operated* rather than profiled:

* per-request and per-tier latency **histograms**
  (:class:`repro.obs.LatencyHistogram`) updated inline — exact bucket
  counts, so the merged per-tier totals equal the daemon's net total by
  construction;
* a daemon-assigned ``request_id`` on every route request that rides the
  task tuple into the pool workers (one connected trace lane per request
  across pids — see :func:`repro.obs.request_context`);
* an optional HTTP sidecar (``--metrics-port``) answering ``/metrics``,
  ``/healthz``, and ``/readyz`` (:mod:`repro.serve.http`), plus
  structured ``slow_request`` log records above
  :attr:`ServeConfig.slow_request_seconds`.
"""

from __future__ import annotations

import asyncio
import dataclasses
import logging
import threading
import time
import uuid
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from .. import obs
from ..engine.protocol import resolve_point_policy
from ..exceptions import ReproError
from . import pool
from .http import TelemetryEndpoint
from .protocol import (
    KNOWN_OPS,
    MAX_NETS_PER_REQUEST,
    PROTOCOL_VERSION,
    check_version,
    decode_message,
    encode_message,
    net_from_payload,
    result_to_payload,
)

if TYPE_CHECKING:
    from ..incremental.engine import IncrementalRouter

#: Structured logger carrying the daemon's slow-request records.
LOGGER = logging.getLogger("repro.serve")

#: The cache tiers a net can be served from, in warmest-first order.
TIERS = ("memory", "store", "routed")

#: Line-buffer limit for reader streams: route batches and tree payloads
#: are JSON lines that can far exceed asyncio's 64 KiB default.
STREAM_LIMIT = 64 * 1024 * 1024

#: Cap on concurrently-held ECO sessions (each holds an engine + per-net
#: retained solver state; a runaway client must not exhaust the daemon).
MAX_ECO_SESSIONS = 64


@dataclass
class ServeConfig:
    """Deployment knobs of one :class:`RouteServer` instance.

    At least one of ``socket_path`` / ``host`` must be set. ``port=0``
    binds an ephemeral TCP port (read it back from
    :attr:`RouteServer.tcp_port` — how tests and the smoke job avoid
    collisions).

    ``metrics_port`` (when not None) binds the HTTP telemetry sidecar —
    ``/metrics``, ``/healthz``, ``/readyz`` — on ``metrics_host``;
    ``metrics_port=0`` binds an ephemeral port (read it back from
    :attr:`RouteServer.metrics_port`). ``telemetry`` additionally enables
    the obs registries inside every pool worker so their metrics are
    drained and merged into the daemon's at shutdown.
    """

    socket_path: Optional[str] = None
    host: Optional[str] = None
    port: int = 0
    workers: int = 2
    method: str = "patlabor"
    cache_mode: Optional[str] = "symmetry"
    cache_entries: int = 100_000
    store_path: Optional[str] = None
    use_default_lut: bool = True
    telemetry: bool = False
    metrics_host: str = "127.0.0.1"
    metrics_port: Optional[int] = None
    slow_request_seconds: float = 1.0
    router_options: Dict[str, Any] = field(default_factory=dict)

    def worker_spec(self) -> pool.WorkerSpec:
        """The pool-side description derived from this config."""
        return pool.WorkerSpec(
            method=self.method,
            cache_mode=self.cache_mode,
            cache_entries=self.cache_entries,
            store_path=self.store_path,
            use_default_lut=self.use_default_lut,
            telemetry=self.telemetry,
            router_options=dict(self.router_options),
        )


class RouteServer:
    """The daemon: accepts route requests, answers from the worker pool.

    Lifecycle: :meth:`start` (creates the pool and the listeners),
    :meth:`serve_until_stopped` (runs until a ``shutdown`` request or
    :meth:`stop`), after which the pool is drained, every worker's
    persistent-store statistics are flushed, and the sockets are closed.
    """

    def __init__(self, config: ServeConfig) -> None:
        if config.socket_path is None and config.host is None:
            raise ValueError("ServeConfig needs a socket_path and/or a host")
        self.config = config
        self.started_at = 0.0
        self.requests = 0
        self.nets = 0
        self.errors = 0
        self.served: Dict[str, int] = {tier: 0 for tier in TIERS}
        self.queue_depth = 0
        self.queue_depth_max = 0
        #: Per-daemon-incarnation token prefixed onto every request id, so
        #: ids stay disjoint across daemon restarts even when the sequence
        #: counter resets with the process.
        self.instance = uuid.uuid4().hex[:8]
        self._request_seq = 0
        #: Always-on latency histograms (exact counts, associative merge;
        #: independent of the obs enabled flag — this is how the daemon is
        #: operated, not profiled). ``request_hist`` tracks whole-request
        #: wall time; ``net_hists`` tracks worker-measured per-net wall
        #: time keyed by the cache tier that served the net, so the three
        #: tier counts sum to ``self.nets`` by construction (the ``eco``
        #: lane is separate: keyed under ``"eco"``, counted by
        #: ``self.eco_deltas``, never folded into ``self.nets``).
        self.request_hist = obs.LatencyHistogram()
        self.net_hists: Dict[str, obs.LatencyHistogram] = {
            tier: obs.LatencyHistogram() for tier in TIERS
        }
        self.slow_requests = 0
        #: Flipped by the readiness task once every pool worker answered
        #: its :func:`repro.serve.pool.worker_ready` probe; ``/readyz``
        #: serves 503 until then.
        self.ready = False
        self.worker_info: List[Dict[str, Any]] = []
        self._executor: Optional[ProcessPoolExecutor] = None
        self._servers: List[asyncio.AbstractServer] = []
        self._stop_event: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._metrics_endpoint: Optional[TelemetryEndpoint] = None
        self._ready_task: Optional["asyncio.Task[None]"] = None
        #: Daemon-held ECO sessions: one IncrementalRouter (own engine +
        #: per-net retained state) per session id. Session engines never
        #: attach the persistent store — it is flock single-writer and
        #: belongs to the pool workers. All ECO work runs serialized on a
        #: lazily-created single-thread executor (IncrementalRouter is
        #: not thread-safe), off the event loop.
        self._eco_sessions: Dict[str, "IncrementalRouter"] = {}
        self._eco_executor: Optional[ThreadPoolExecutor] = None
        self.eco_deltas = 0

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        """Create the worker pool and bind the configured endpoints."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        spec = self.config.worker_spec()
        # Parse the LUT in the parent first: fork-started workers then
        # inherit it copy-on-write and initializers are near-instant.
        pool.preload_shared_state(spec)
        self._executor = ProcessPoolExecutor(
            max_workers=max(1, self.config.workers),
            initializer=pool.init_worker,
            initargs=(spec,),
        )
        if self.config.socket_path is not None:
            self._servers.append(
                await asyncio.start_unix_server(
                    self._handle_connection,
                    path=self.config.socket_path,
                    limit=STREAM_LIMIT,
                )
            )
        if self.config.host is not None:
            self._servers.append(
                await asyncio.start_server(
                    self._handle_connection,
                    host=self.config.host,
                    port=self.config.port,
                    limit=STREAM_LIMIT,
                )
            )
        if self.config.metrics_port is not None:
            self._metrics_endpoint = TelemetryEndpoint(
                metrics=self.metrics_text,
                ready=lambda: self.ready,
                host=self.config.metrics_host,
                port=self.config.metrics_port,
            )
            await self._metrics_endpoint.start()
        self._ready_task = self._loop.create_task(self._await_pool_ready())
        self.started_at = time.time()

    async def _await_pool_ready(self) -> None:
        """Probe the pool until every worker's initializer has completed.

        Submits one :func:`repro.serve.pool.worker_ready` task per worker
        and gathers the answers. ``/readyz`` flips to 200 only after the
        gather resolves — i.e. after the pool has actually executed work
        post-initialization — and only if each answer shows a healthy
        store when one is configured. A broken pool leaves the daemon
        permanently not-ready (the right probe verdict for it).
        """
        assert self._loop is not None and self._executor is not None
        try:
            probes = [
                self._loop.run_in_executor(self._executor, pool.worker_ready)
                for _ in range(max(1, self.config.workers))
            ]
            info = list(await asyncio.gather(*probes))
        except (BrokenProcessPool, RuntimeError, asyncio.CancelledError):
            return
        self.worker_info = info
        needs_store = self.config.store_path is not None
        self.ready = all(
            w.get("engine")
            and (not needs_store or (w.get("store_attached") and w.get("store_healthy")))
            for w in info
        )

    @property
    def tcp_port(self) -> Optional[int]:
        """The bound TCP port (None without a TCP listener)."""
        if self.config.host is None:
            return None
        for server in self._servers:
            for sock in server.sockets or []:
                name = sock.getsockname()
                if isinstance(name, tuple) and len(name) >= 2:
                    return int(name[1])
        return None

    @property
    def metrics_port(self) -> Optional[int]:
        """The telemetry sidecar's bound port (None when not configured)."""
        if self._metrics_endpoint is None:
            return None
        return self._metrics_endpoint.port

    def stop(self) -> None:
        """Ask :meth:`serve_until_stopped` to wind the daemon down."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve_until_stopped(self) -> None:
        """Serve requests until :meth:`stop` (or a ``shutdown`` request)."""
        if self._stop_event is None:
            await self.start()
        assert self._stop_event is not None
        await self._stop_event.wait()
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        if self._ready_task is not None:
            self._ready_task.cancel()
            self._ready_task = None
        if self._metrics_endpoint is not None:
            await self._metrics_endpoint.stop()
            self._metrics_endpoint = None
        if self._executor is not None:
            if self.config.telemetry:
                # Drain worker-side telemetry into the daemon's global
                # registries (histogram merges are associative, so the
                # drain order across workers is immaterial).
                try:
                    for _ in range(max(1, self.config.workers)):
                        drained = self._executor.submit(
                            pool.drain_worker_telemetry
                        ).result(timeout=10)
                        obs.get_registry().merge_snapshot(drained["snapshot"])
                        obs.get_event_log().extend(drained["events"])
                        obs.get_trace_collector().extend(drained["trace"])
                except Exception:
                    pass
            # Best-effort: ask workers to flush their persistent-store
            # statistics now (their atexit hooks cover stragglers).
            try:
                for _ in range(max(1, self.config.workers)):
                    self._executor.submit(pool.flush_worker).result(timeout=10)
            except Exception:
                pass
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._eco_executor is not None:
            self._eco_executor.shutdown(wait=True)
            self._eco_executor = None
        self._eco_sessions.clear()

    # ------------------------------------------------------------- handlers

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client connection: serve JSON lines until EOF."""
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self._handle_message(line)
                writer.write(encode_message(response))
                await writer.drain()
                if response.get("stopping"):
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Event-loop teardown cancels handlers still blocked in
            # readline(); treat it as EOF. Ending the task *normally*
            # matters: on 3.11 the streams machinery logs a cancelled
            # handler task as "Exception in callback" noise.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (  # pragma: no cover
                asyncio.CancelledError,
                ConnectionResetError,
                BrokenPipeError,
            ):
                pass

    async def _handle_message(self, line: bytes) -> Dict[str, Any]:
        """Decode, dispatch, and account one request line."""
        t0 = time.perf_counter()
        request_id: Any = None
        try:
            message = decode_message(line)
            request_id = message.get("id")
            op = message.get("op")
            if op not in KNOWN_OPS:
                raise ReproError(
                    f"unknown op {op!r}; expected one of {KNOWN_OPS}"
                )
            check_version(message, op)
            self.requests += 1
            obs.counter_add("serve.requests")
            if op == "ping":
                response: Dict[str, Any] = {"ok": True, "pong": True}
            elif op == "stats":
                response = {"ok": True, "stats": self.stats()}
            elif op == "shutdown":
                response = {"ok": True, "stopping": True}
                self.stop()
            elif op == "eco":
                response = await self._op_eco(message)
            else:
                response = await self._op_route(message)
        except ReproError as exc:
            self.errors += 1
            obs.counter_add("serve.errors")
            response = {
                "ok": False,
                "error": str(exc),
                "error_type": type(exc).__name__,
            }
        except Exception as exc:  # defensive: a request must never kill the loop
            self.errors += 1
            obs.counter_add("serve.errors")
            response = {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "error_type": type(exc).__name__,
            }
        response["id"] = request_id
        seconds = time.perf_counter() - t0
        self.request_hist.observe(seconds)
        obs.timer_observe("serve.request_seconds", seconds)
        if seconds > self.config.slow_request_seconds:
            self._log_slow_request(response, seconds)
        return response

    def _log_slow_request(self, response: Dict[str, Any], seconds: float) -> None:
        """Structured record for one request over the slow threshold.

        Emits both a ``logging`` record on ``repro.serve`` (operators
        tail this) and — when event logging is on — a ``slow_request``
        event into the obs event log, each carrying the daemon-assigned
        request id so the record joins the request's trace lane.
        """
        self.slow_requests += 1
        rid = str(response.get("request_id", ""))
        nets = len(response.get("results", []) or [])
        LOGGER.warning(
            "slow_request request_id=%s seconds=%.6f nets=%d threshold=%.3f",
            rid,
            seconds,
            nets,
            self.config.slow_request_seconds,
        )
        obs.emit_event(
            "slow_request",
            request_id=rid,
            seconds=seconds,
            nets=nets,
            threshold_s=self.config.slow_request_seconds,
        )

    def _next_request_id(self) -> str:
        """The next daemon-assigned request id (instance token + sequence)."""
        self._request_seq += 1
        return f"{self.instance}-{self._request_seq}"

    async def _op_route(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Fan a route request's nets out to the pool; gather in order.

        The daemon assigns the request a ``request_id`` and each net a
        ``net_id`` (``<request_id>/<index>``); both ride the task tuple
        into the worker, scope its spans/events, and come back in the
        response for end-to-end propagation checks. Worker-measured
        per-net seconds are folded into the per-tier latency histograms
        here — on the event loop, so no locking subtleties — which keeps
        the merged tier counts equal to ``self.nets`` at all times.
        """
        nets = message.get("nets")
        if not isinstance(nets, list) or not nets:
            raise ReproError("route request needs a non-empty 'nets' list")
        if len(nets) > MAX_NETS_PER_REQUEST:
            raise ReproError(
                f"route request carries {len(nets)} nets; "
                f"limit is {MAX_NETS_PER_REQUEST}"
            )
        with_trees = bool(message.get("with_trees", False))
        select = message.get("select")
        if select is not None:
            if not isinstance(select, str):
                raise ReproError("route 'select' must be a policy spec string")
            # Fail fast on the event loop (PolicyError is a ReproError),
            # instead of once per net inside the workers.
            resolve_point_policy(select)
        request_id = self._next_request_id()
        assert self._loop is not None and self._executor is not None
        self.queue_depth += len(nets)
        self.queue_depth_max = max(self.queue_depth_max, self.queue_depth)
        obs.gauge_max("serve.queue_depth_max", float(self.queue_depth))
        try:
            futures = [
                self._loop.run_in_executor(
                    self._executor,
                    partial(
                        pool.route_payload,
                        payload,
                        with_trees,
                        request_id,
                        f"{request_id}/{index}",
                        select,
                    ),
                )
                for index, payload in enumerate(nets)
            ]
            try:
                results = await asyncio.gather(*futures)
            except BrokenProcessPool as exc:
                raise ReproError(f"worker pool died: {exc}") from exc
        finally:
            self.queue_depth -= len(nets)
        self.nets += len(results)
        obs.counter_add("serve.nets", len(results))
        for result in results:
            tier = str(result.get("served", "routed"))
            self.served[tier] = self.served.get(tier, 0) + 1
            obs.counter_add(f"serve.served_{tier}")
            seconds = result.get("seconds")
            if isinstance(seconds, (int, float)):
                hist = self.net_hists.get(tier)
                if hist is None:
                    hist = self.net_hists[tier] = obs.LatencyHistogram()
                hist.observe(float(seconds))
        return {"ok": True, "request_id": request_id, "results": list(results)}

    # ------------------------------------------------------------------- eco

    def _eco_router(self) -> "IncrementalRouter":
        """A fresh session engine for one ECO session.

        Built from the same spec the pool workers use, minus the
        persistent store — the store is flock single-writer and belongs
        to the pool workers; session engines live privately inside the
        daemon process.
        """
        from ..incremental.engine import IncrementalRouter

        spec = dataclasses.replace(self.config.worker_spec(), store_path=None)
        return IncrementalRouter(spec.build())

    async def _op_eco(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """One ECO request: seed a session (``nets``) or apply a ``delta``.

        Sessions are daemon-held :class:`IncrementalRouter` instances
        keyed by the client-chosen ``session`` string. The ``nets`` form
        routes and *tracks* the nets (creating the session on first
        touch, up to :data:`MAX_ECO_SESSIONS`); the ``delta`` form
        applies one edit against the retained state and answers with the
        re-routed front plus reuse accounting. All session work runs
        serialized on a single-thread executor — IncrementalRouter is
        stateful and not thread-safe — so concurrent clients interleave
        at delta granularity without corrupting retained solver state.
        """
        from ..incremental.delta import delta_from_payload

        session_id = message.get("session")
        if not isinstance(session_id, str) or not session_id:
            raise ReproError("eco request needs a non-empty 'session' string")
        assert self._loop is not None
        if self._eco_executor is None:
            self._eco_executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-eco"
            )
        request_id = self._next_request_id()
        with_trees = bool(message.get("with_trees", False))
        nets = message.get("nets")
        if nets is not None:
            if not isinstance(nets, list) or not nets:
                raise ReproError("eco 'nets' must be a non-empty list")
            if len(nets) > MAX_NETS_PER_REQUEST:
                raise ReproError(
                    f"eco request carries {len(nets)} nets; "
                    f"limit is {MAX_NETS_PER_REQUEST}"
                )
            router = self._eco_sessions.get(session_id)
            if router is None:
                if len(self._eco_sessions) >= MAX_ECO_SESSIONS:
                    raise ReproError(
                        f"eco session limit reached ({MAX_ECO_SESSIONS}); "
                        "reuse an existing session id"
                    )
                router = self._eco_router()
                self._eco_sessions[session_id] = router
            parsed = [net_from_payload(payload) for payload in nets]

            def _seed() -> List[Dict[str, Any]]:
                return [
                    result_to_payload(
                        net.name,
                        router.route(net),
                        "eco",
                        with_trees=with_trees,
                    )
                    for net in parsed
                ]

            results = await self._loop.run_in_executor(
                self._eco_executor, _seed
            )
            return {
                "ok": True,
                "request_id": request_id,
                "session": session_id,
                "tracked": router.num_sessions,
                "results": results,
            }
        delta_payload = message.get("delta")
        if delta_payload is None:
            raise ReproError(
                "eco request needs 'nets' (seed/track) or 'delta' (apply)"
            )
        router = self._eco_sessions.get(session_id)
        if router is None:
            raise ReproError(
                f"unknown eco session {session_id!r}; "
                "seed it with a 'nets' request first"
            )
        delta = delta_from_payload(delta_payload)
        eco = await self._loop.run_in_executor(
            self._eco_executor, partial(router.apply_delta, delta)
        )
        self.eco_deltas += 1
        hist = self.net_hists.get("eco")
        if hist is None:
            hist = self.net_hists["eco"] = obs.LatencyHistogram()
        hist.observe(eco.wall_s)
        response: Dict[str, Any] = {
            "ok": True,
            "request_id": request_id,
            "session": session_id,
            "kind": eco.kind,
            "tier": eco.tier,
            "cache_hit": eco.cache_hit,
            "reused_masks": eco.reused_masks,
            "total_masks": eco.total_masks,
            "reuse_rate": eco.reuse_rate,
            "seconds": eco.wall_s,
        }
        if eco.net is not None and eco.front is not None:
            response["result"] = result_to_payload(
                eco.net.name, eco.front, "eco", with_trees=with_trees
            )
        return response

    # ----------------------------------------------------------------- stats

    def stats(self) -> Dict[str, Any]:
        """The daemon's throughput counters, as served by the ``stats`` op.

        ``warm_hit_rate`` counts nets answered without routing (memory or
        store tier) over all nets; ``store_hit_rate`` counts disk hits
        over the nets that missed memory — the number the cross-run cache
        tier is judged by.
        """
        uptime = max(time.time() - self.started_at, 1e-9)
        memory = self.served.get("memory", 0)
        store = self.served.get("store", 0)
        routed = self.served.get("routed", 0)
        cold_or_store = store + routed
        stats: Dict[str, Any] = {
            "uptime_seconds": uptime,
            "instance": self.instance,
            "ready": self.ready,
            "protocol_version": PROTOCOL_VERSION,
            "eco_sessions": len(self._eco_sessions),
            "eco_deltas": self.eco_deltas,
            "workers": self.config.workers,
            "requests": self.requests,
            "nets": self.nets,
            "errors": self.errors,
            "slow_requests": self.slow_requests,
            "requests_per_second": self.requests / uptime,
            "nets_per_second": self.nets / uptime,
            "served_memory": memory,
            "served_store": store,
            "served_routed": routed,
            "warm_hit_rate": (memory + store) / self.nets if self.nets else 0.0,
            "store_hit_rate": store / cold_or_store if cold_or_store else 0.0,
            "queue_depth": self.queue_depth,
            "queue_depth_max": self.queue_depth_max,
            "store_path": self.config.store_path,
            "method": self.config.method,
            "cache_mode": self.config.cache_mode,
            "latency_ms": {
                "request": self.request_hist.as_summary(),
                **{
                    tier: hist.as_summary()
                    for tier, hist in sorted(self.net_hists.items())
                },
            },
        }
        obs.gauge_set("serve.requests_per_second", stats["requests_per_second"])
        obs.gauge_set("serve.nets_per_second", stats["nets_per_second"])
        obs.gauge_set("serve.warm_hit_rate", stats["warm_hit_rate"])
        obs.gauge_set("serve.store_hit_rate", stats["store_hit_rate"])
        return stats

    # ------------------------------------------------------------- telemetry

    def telemetry_registry(self) -> "obs.Registry":
        """A temporary registry holding the daemon's authoritative metrics.

        Built per scrape: start from the process-global obs snapshot (so
        profiled runs keep their counters in ``/metrics``), then
        overwrite the serve family with the daemon's always-on values —
        counters, gauges, and the request/per-tier histograms plus their
        associative fold ``serve.net_seconds`` (whose total count equals
        the daemon's net total by construction). Overwriting after the
        merge means each family appears exactly once in the exposition.
        """
        reg = obs.Registry()
        reg.merge_snapshot(obs.get_registry().snapshot(with_samples=True))
        uptime = max(time.time() - self.started_at, 1e-9)
        reg.counters["serve.requests"] = float(self.requests)
        reg.counters["serve.nets"] = float(self.nets)
        reg.counters["serve.errors"] = float(self.errors)
        reg.counters["serve.slow_requests"] = float(self.slow_requests)
        for tier in TIERS:
            reg.counters[f"serve.served_{tier}"] = float(
                self.served.get(tier, 0)
            )
        reg.gauges["serve.uptime_seconds"] = uptime
        reg.gauges["serve.ready"] = 1.0 if self.ready else 0.0
        reg.gauges["serve.workers"] = float(self.config.workers)
        reg.gauges["serve.queue_depth"] = float(self.queue_depth)
        reg.gauges["serve.queue_depth_max"] = float(self.queue_depth_max)
        reg.gauges["serve.requests_per_second"] = self.requests / uptime
        reg.gauges["serve.nets_per_second"] = self.nets / uptime
        warm = self.served.get("memory", 0) + self.served.get("store", 0)
        reg.gauges["serve.warm_hit_rate"] = (
            warm / self.nets if self.nets else 0.0
        )
        reg.counters["serve.eco_deltas"] = float(self.eco_deltas)
        reg.gauges["serve.eco_sessions"] = float(len(self._eco_sessions))
        reg.histograms["serve.request_seconds"] = self.request_hist.clone()
        tier_hists = {
            f"serve.net_seconds.{tier}": hist.clone()
            for tier, hist in self.net_hists.items()
        }
        reg.histograms.update(tier_hists)
        # The associative fold spans the cache tiers only; the "eco" lane
        # counts delta applications (serve.eco_deltas), not routed nets,
        # so folding it in would break count == serve.nets.
        reg.histograms["serve.net_seconds"] = obs.merge_histograms(
            [h for name, h in tier_hists.items()
             if name != "serve.net_seconds.eco"]
        )
        return reg

    def metrics_text(self) -> str:
        """The ``/metrics`` body: :meth:`telemetry_registry` as exposition."""
        return obs.to_prometheus(self.telemetry_registry())


class ServerThread:
    """A :class:`RouteServer` on a background thread (tests, benchmarks).

    Drives the server's asyncio loop off the caller's thread::

        with ServerThread(ServeConfig(socket_path=...)) as handle:
            client = ServeClient(socket_path=...)
            ...

    Entering the context blocks until the endpoints are bound; leaving it
    stops the server and joins the thread.
    """

    def __init__(self, config: ServeConfig, start_timeout: float = 60.0) -> None:
        self.server = RouteServer(config)
        self._start_timeout = start_timeout
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def main() -> None:
            try:
                await self.server.start()
            except BaseException as exc:  # surface bind/pool failures
                self._startup_error = exc
                self._ready.set()
                raise
            self._ready.set()
            await self.server.serve_until_stopped()

        asyncio.run(main())

    def start(self) -> "ServerThread":
        """Start the thread; block until the server is accepting."""
        self._thread.start()
        if not self._ready.wait(self._start_timeout):
            raise TimeoutError("server did not come up in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"server failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def stop(self, timeout: float = 60.0) -> None:
        """Stop the server and join the thread."""
        loop = self.server._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.server.stop)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
