"""Congestion extension: the paper's future-work metric, implemented.

Tri-objective (wirelength, delay, congestion) Pareto optimisation —
exact for small nets, embedding-optimised annotation for any net.
"""

from .model import CongestionMap
from .pareto3 import (
    Solution3,
    dominates3,
    is_pareto_front3,
    pareto_filter3,
    project_wd,
    weakly_dominates3,
)
from .router import (
    congestion_annotated_front,
    embed_min_congestion,
    pareto_dw3,
)

__all__ = [
    "CongestionMap",
    "Solution3",
    "congestion_annotated_front",
    "dominates3",
    "embed_min_congestion",
    "is_pareto_front3",
    "pareto_dw3",
    "pareto_filter3",
    "project_wd",
    "weakly_dominates3",
]
