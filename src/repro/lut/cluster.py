"""Topology interning pool — the paper's table-compression clustering.

Section V-A observes that "for a single set of pins with different
sources, many topologies are the same", and stores one representative per
cluster. The pool interns topologies by their undirected grid-edge set:
every table entry references pool indices instead of owning copies, which
is where the bulk of the size reduction in Table II's ``Size`` column
comes from.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

GridNode = Tuple[int, int]
EdgeSet = FrozenSet[Tuple[GridNode, GridNode]]


class TopologyPool:
    """Interning store for grid-edge-set topologies."""

    def __init__(self) -> None:
        self._index: Dict[EdgeSet, int] = {}
        self._edges: List[EdgeSet] = []
        self.hits = 0  # how many interns found an existing entry

    def intern(self, edges: EdgeSet) -> int:
        """Return the pool id of ``edges``, inserting it if new."""
        idx = self._index.get(edges)
        if idx is not None:
            self.hits += 1
            return idx
        idx = len(self._edges)
        self._index[edges] = idx
        self._edges.append(edges)
        return idx

    def get(self, idx: int) -> EdgeSet:
        """The edge set stored under pool id ``idx``."""
        return self._edges[idx]

    def __len__(self) -> int:
        return len(self._edges)

    @property
    def dedup_ratio(self) -> float:
        """References saved by interning: total references / stored."""
        total = len(self._edges) + self.hits
        return total / len(self._edges) if self._edges else 1.0
