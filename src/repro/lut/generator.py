"""Lookup-table generation: symbolic Pareto-DW over pin patterns.

A degree-``n`` *pattern* places ``n`` pins on an ``n x n`` grid, one per
column and row: pin in column ``i`` sits at row ``perm[i]``, and one
column holds the source. Every net reduces to a pattern by coordinate
ranking, and patterns equivalent under the eight plane symmetries share a
canonical representative (paper's symmetry reduction), so the table needs
one entry per canonical ``(perm, source_col)`` pair — the paper's
``#Index``.

For each pattern this module runs the *symbolic* Pareto-DW of Section V-A:
identical recurrence to :mod:`repro.core.pareto_dw`, but solutions are
``(W, D)`` gap-usage vectors pruned by Lemma 1 (see
:mod:`repro.lut.symbolic`). The surviving solutions are all topologies
that can be Pareto-optimal for *some* gap assignment — evaluating them
numerically at lookup time therefore yields the exact frontier.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from ..geometry.transforms import canonical_pattern
from ..core.pareto_dw import _consecutive_splits
from ..obs import counter_add, enabled as _obs_enabled, span, timer_observe
from .symbolic import (
    SymbolicSolution,
    merge_solutions,
    prune_front,
    shift_solution,
)

GridNode = Tuple[int, int]
Pattern = Tuple[Tuple[int, ...], int]  # (perm, source_col)
EdgeSet = FrozenSet[Tuple[GridNode, GridNode]]


@dataclass
class PatternSolutions:
    """All potentially-Pareto-optimal topologies of one canonical pattern."""

    perm: Tuple[int, ...]
    source_col: int
    solutions: List[SymbolicSolution] = field(default_factory=list)
    # payload of each solution: frozenset of undirected grid-node edges.


def _symbolic_edge(a: GridNode, b: GridNode, n: int) -> Tuple[int, ...]:
    counts = [0] * (2 * (n - 1))
    x0, x1 = sorted((a[0], b[0]))
    for k in range(x0, x1):
        counts[k] = 1
    y0, y1 = sorted((a[1], b[1]))
    off = n - 1
    for k in range(y0, y1):
        counts[off + k] = 1
    return tuple(counts)


def _corner_pruned_nodes(n: int, pins: Sequence[GridNode]) -> List[GridNode]:
    """Active nodes after Lemma 2 on the pattern grid."""
    out: List[GridNode] = []
    for ix in range(n):
        for iy in range(n):
            ll = lr = ul = ur = True
            for px, py in pins:
                if px <= ix and py <= iy:
                    ll = False
                if px >= ix and py <= iy:
                    lr = False
                if px <= ix and py >= iy:
                    ul = False
                if px >= ix and py >= iy:
                    ur = False
                if not (ll or lr or ul or ur):
                    break
            if not (ll or lr or ul or ur):
                out.append((ix, iy))
    return out


def _collect_edges(payload) -> EdgeSet:
    edges = set()
    stack = [payload]
    while stack:
        p = stack.pop()
        if p[0] == "leaf":
            continue
        if p[0] == "ext":
            _, u, v, child = p
            if u != v:
                edges.add((u, v) if u <= v else (v, u))
            stack.append(child)
        else:
            stack.append(p[1])
            stack.append(p[2])
    return frozenset(edges)


def _boundary_order_pattern(n: int, nodes: Sequence[GridNode]) -> Optional[List[int]]:
    """Clockwise boundary rank per node on the n x n pattern grid."""
    ranks: List[int] = []
    for ix, iy in nodes:
        if iy == n - 1:
            r = ix
        elif ix == n - 1:
            r = (n - 1) + (n - 1 - iy)
        elif iy == 0:
            r = 2 * (n - 1) + (n - 1 - ix)
        elif ix == 0:
            r = 3 * (n - 1) + iy
        else:
            return None
        ranks.append(r)
    return ranks


def solve_pattern(
    perm: Sequence[int],
    source_col: int,
    *,
    prune_mode: str = "componentwise",
    lemma3: bool = True,
    lemma4: bool = True,
) -> PatternSolutions:
    """Run symbolic Pareto-DW on one pattern.

    Returns the set of potentially optimal topologies, each a
    :class:`SymbolicSolution` whose payload is its grid edge set.
    """
    profiling = _obs_enabled()
    #: Solutions discarded by Lemma-1 pruning across this pattern's DP
    #: (``len(bucket) - len(front)`` per prune call), counted only while
    #: profiling; a one-element list so the nested closures can mutate it.
    pruned = [0]

    def _count_prune(before: int, after: int) -> None:
        if profiling:
            pruned[0] += before - after

    with span("lut.solve_pattern"):
        result = _solve_pattern_impl(
            perm,
            source_col,
            prune_mode=prune_mode,
            lemma3=lemma3,
            lemma4=lemma4,
            count_prune=_count_prune,
        )
    if profiling:
        counter_add("lut.patterns_solved")
        counter_add("lut.symbolic_pruned", pruned[0])
        counter_add("lut.topologies_kept", len(result.solutions))
    return result


def _solve_pattern_impl(
    perm: Sequence[int],
    source_col: int,
    *,
    prune_mode: str,
    lemma3: bool,
    lemma4: bool,
    count_prune,
) -> PatternSolutions:
    """The symbolic DP body of :func:`solve_pattern`."""
    n = len(perm)
    m = 2 * (n - 1)
    pins: List[GridNode] = [(i, perm[i]) for i in range(n)]
    source = pins[source_col]
    sinks = [p for i, p in enumerate(pins) if i != source_col]
    num_sinks = len(sinks)
    full = (1 << num_sinks) - 1
    nodes = _corner_pruned_nodes(n, pins)
    zero = (0,) * m
    edge_vec: Dict[Tuple[GridNode, GridNode], Tuple[int, ...]] = {}

    def evec(a: GridNode, b: GridNode) -> Tuple[int, ...]:
        key = (a, b)
        v = edge_vec.get(key)
        if v is None:
            v = _symbolic_edge(a, b, n)
            edge_vec[key] = v
        return v

    boundary_rank = _boundary_order_pattern(n, sinks) if lemma4 else None

    S: List[Optional[Dict[GridNode, List[SymbolicSolution]]]] = [None] * (full + 1)

    def closure(
        merged: Dict[GridNode, List[SymbolicSolution]]
    ) -> Dict[GridNode, List[SymbolicSolution]]:
        out: Dict[GridNode, List[SymbolicSolution]] = {}
        sources = [(u, lst) for u, lst in merged.items() if lst]
        for v in nodes:
            bucket: List[SymbolicSolution] = []
            for u, lst in sources:
                if u == v:
                    bucket.extend(lst)
                else:
                    ev = evec(u, v)
                    for s in lst:
                        bucket.append(
                            shift_solution(s, ev, ("ext", u, v, s.payload))
                        )
            front = prune_front(bucket, mode=prune_mode)
            count_prune(len(bucket), len(front))
            out[v] = front
        return out

    for si, s_node in enumerate(sinks):
        base = {
            s_node: [SymbolicSolution(zero, (zero,), ("leaf", s_node))]
        }
        S[1 << si] = closure(base)

    masks_by_size: List[List[int]] = [[] for _ in range(num_sinks + 1)]
    for mask in range(1, full + 1):
        masks_by_size[bin(mask).count("1")].append(mask)

    for size in range(2, num_sinks + 1):
        for mask in masks_by_size[size]:
            bits = [i for i in range(num_sinks) if mask >> i & 1]
            if lemma3:
                ixs = [sinks[i][0] for i in bits]
                iys = [sinks[i][1] for i in bits]
                bxlo, bxhi = min(ixs), max(ixs)
                bylo, byhi = min(iys), max(iys)
            if boundary_rank is not None:
                submasks = _consecutive_splits(bits, boundary_rank)
                low = 1 << bits[0]
                submasks = [sm for sm in submasks if sm & low]
            else:
                low = 1 << bits[0]
                rest = mask & ~low
                submasks = []
                sub = rest
                while True:
                    submasks.append(sub | low)
                    if sub == 0:
                        break
                    sub = (sub - 1) & rest
                submasks = [sm for sm in submasks if sm != mask]

            merged: Dict[GridNode, List[SymbolicSolution]] = {}
            for v in nodes:
                if lemma3:
                    ix, iy = v
                    if not (bxlo <= ix <= bxhi and bylo <= iy <= byhi):
                        continue
                bucket: List[SymbolicSolution] = []
                for q1 in submasks:
                    q2 = mask ^ q1
                    s1 = S[q1].get(v) if S[q1] else None
                    s2 = S[q2].get(v) if S[q2] else None
                    if not s1 or not s2:
                        continue
                    for a in s1:
                        for b in s2:
                            bucket.append(
                                merge_solutions(
                                    a, b, ("merge", a.payload, b.payload)
                                )
                            )
                if bucket:
                    front = prune_front(bucket, mode=prune_mode)
                    count_prune(len(bucket), len(front))
                    merged[v] = front
            S[mask] = closure(merged)

    raw = S[full][source] if S[full] else []
    # Replace backpointers by concrete edge sets and re-prune: distinct DP
    # derivations can share an edge set.
    finals: List[SymbolicSolution] = [
        SymbolicSolution(s.w, s.rows, _collect_edges(s.payload)) for s in raw
    ]
    pruned_finals = prune_front(finals, mode=prune_mode)
    count_prune(len(finals), len(pruned_finals))
    return PatternSolutions(tuple(perm), source_col, pruned_finals)


def enumerate_canonical_patterns(n: int) -> Iterator[Pattern]:
    """All canonical ``(perm, source_col)`` pairs of degree ``n``.

    A pattern is canonical when it equals the lexicographic minimum of its
    symmetry orbit; one entry per orbit is exactly the paper's ``#Index``.
    """
    for perm in itertools.permutations(range(n)):
        for src in range(n):
            cperm, csrc, _ = canonical_pattern(perm, src)
            if (cperm, csrc) == (perm, src):
                yield perm, src


def count_canonical_patterns(n: int) -> int:
    """The ``#Index`` statistic of Table II for degree ``n``."""
    return sum(1 for _ in enumerate_canonical_patterns(n))


def generate_degree(
    n: int,
    *,
    prune_mode: str = "componentwise",
    limit: Optional[int] = None,
    stride: int = 1,
    progress=None,
) -> Dict[Pattern, PatternSolutions]:
    """Solve every canonical pattern of degree ``n``.

    With ``limit`` set only that many patterns are solved; ``stride``
    spaces the sample across the enumeration (taking the first ``limit``
    patterns would bias statistics towards near-sorted permutations,
    which have unusually simple Hanan structure).
    """
    import time as _time

    table: Dict[Pattern, PatternSolutions] = {}
    solved = 0
    t0 = _time.perf_counter()
    with span("lut.generate_degree"):
        for i, (perm, src) in enumerate(enumerate_canonical_patterns(n)):
            if stride > 1 and i % stride:
                continue
            if limit is not None and solved >= limit:
                break
            table[(perm, src)] = solve_pattern(perm, src, prune_mode=prune_mode)
            solved += 1
            if progress is not None:
                progress(i, (perm, src))
    if _obs_enabled():
        timer_observe(f"lut.gen_degree_{n}_seconds", _time.perf_counter() - t0)
    return table


def _solve_worker(job: Tuple[Tuple[int, ...], int, str]) -> Tuple[Pattern, PatternSolutions]:
    """Module-level worker for :func:`generate_degree_parallel` (picklable)."""
    perm, src, prune_mode = job
    return (perm, src), solve_pattern(perm, src, prune_mode=prune_mode)


def generate_degree_parallel(
    n: int,
    *,
    jobs: Optional[int] = None,
    prune_mode: str = "componentwise",
    limit: Optional[int] = None,
) -> Dict[Pattern, PatternSolutions]:
    """Multi-process :func:`generate_degree` (paper: 16-thread generation).

    Patterns are independent, so generation is embarrassingly parallel;
    results are deterministic and identical to the serial path. Falls back
    to serial execution when only one job is requested.

    Only the parent-side wall time is profiled (``lut.gen_degree_<n>_seconds``);
    worker-internal counters stay in the workers.
    """
    import multiprocessing
    import time as _time

    if jobs == 1:
        return generate_degree(n, prune_mode=prune_mode, limit=limit)
    patterns: List[Pattern] = []
    for i, p in enumerate(enumerate_canonical_patterns(n)):
        if limit is not None and i >= limit:
            break
        patterns.append(p)
    workload = [(perm, src, prune_mode) for perm, src in patterns]
    t0 = _time.perf_counter()
    with span("lut.generate_degree_parallel"):
        with multiprocessing.Pool(processes=jobs) as pool:
            results = pool.map(_solve_worker, workload)
    if _obs_enabled():
        counter_add("lut.patterns_solved", len(results))
        timer_observe(f"lut.gen_degree_{n}_seconds", _time.perf_counter() - t0)
    return dict(results)
