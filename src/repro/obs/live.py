"""Live-service telemetry primitives: histograms, request context, exposition.

The offline observability stack (PRs 1-2) aggregates into counters and
bounded timer *samples*, which is enough for post-run reports but not for
a resident daemon: sample rings saturate, percentiles drift with
eviction order, and per-worker distributions cannot be folded exactly.
This module supplies the three live-service building blocks:

* :class:`LatencyHistogram` — a **fixed-bucket, log-spaced latency
  histogram** with exact integer counts and an **associative merge**:
  per-worker histograms fold into daemon totals in any order without
  changing a single bucket count or reported percentile (the property
  ``tests/test_obs_live.py`` proves with hypothesis). The registry keeps
  one next to every timer, so ``timer_observe`` feeds both.
* **Request context** — :func:`request_context` /
  :func:`current_request_id` carry the daemon-assigned ``request_id`` /
  ``net_id`` pair across the asyncio ↔ worker-pool boundary, so
  worker-side spans and ``net_routed`` events can be stitched into one
  per-request lane across pids (see :mod:`repro.obs.trace`).
* **Exposition tooling** — :func:`parse_prometheus_text` and
  :func:`validate_exposition` parse and structurally check Prometheus
  text exposition (the format ``/metrics`` serves and ``repro top``
  polls), including the histogram bucket contract (cumulative,
  monotone, ``+Inf`` equals ``_count``).

The module is an import leaf: :mod:`repro.obs.registry` imports the
histogram type from here, never the other way around.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

# --------------------------------------------------------------- histograms


def log_bucket_bounds(
    lo: float = 1e-5, hi: float = 100.0, per_decade: int = 5
) -> Tuple[float, ...]:
    """Log-spaced bucket upper bounds from ``lo`` to at least ``hi`` seconds.

    Bounds are ``lo * 10**(i / per_decade)`` — a deterministic, purely
    arithmetic series, so every process derives byte-identical bounds and
    histograms merge without negotiation. The default (10 µs … 100 s,
    5 buckets per decade, 36 bounds) brackets everything from a memory
    cache hit to a degree-50 cold solve with ~58% bucket resolution.
    """
    if lo <= 0 or hi < lo or per_decade < 1:
        raise ValueError(
            f"need 0 < lo <= hi and per_decade >= 1, got {lo}, {hi}, {per_decade}"
        )
    bounds: List[float] = []
    i = 0
    while True:
        bound = lo * 10.0 ** (i / per_decade)
        bounds.append(bound)
        if bound >= hi:
            return tuple(bounds)
        i += 1


#: The shared default bucket layout: 10 µs to 100 s, 5 buckets per decade.
DEFAULT_BOUNDS: Tuple[float, ...] = log_bucket_bounds()


class LatencyHistogram:
    """Fixed-bucket latency histogram with exact, associatively-mergeable counts.

    ``bounds`` are *upper* bucket edges in seconds (sorted, positive); an
    implicit overflow bucket catches observations above the last bound
    (Prometheus' ``+Inf``). Counts are integers, so
    ``a.merge(b); a.merge(c)`` and ``b.merge(c); a.merge(b')`` produce
    identical buckets — merge order never changes counts or percentiles.
    The float ``sum`` accumulator is the only non-associative field and
    is documented as approximate; all percentile math uses counts only.
    """

    __slots__ = ("bounds", "counts", "count", "sum")

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        bounds = tuple(DEFAULT_BOUNDS if bounds is None else bounds)
        if not bounds or any(
            b <= 0 or not math.isfinite(b) for b in bounds
        ) or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                "histogram bounds must be finite, positive, strictly increasing"
            )
        self.bounds: Tuple[float, ...] = bounds
        #: Per-bucket counts; index ``len(bounds)`` is the overflow bucket.
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count: int = 0
        self.sum: float = 0.0

    def observe(self, seconds: float) -> None:
        """Record one duration: the first bucket with ``bound >= seconds``."""
        self.counts[bisect_left(self.bounds, seconds)] += 1
        self.count += 1
        self.sum += seconds

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other`` into this histogram (exact; bounds must match)."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds "
                f"({len(self.bounds)} vs {len(other.bounds)} buckets)"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.sum += other.sum

    def percentile(self, q: float) -> float:
        """The upper bound of the bucket holding quantile ``q`` in [0, 1].

        Deterministic under any merge order (depends only on integer
        counts). Returns 0.0 on an empty histogram; observations in the
        overflow bucket report the last finite bound (a conservative
        lower estimate, flagged by :meth:`overflow` being non-zero).
        """
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(min(max(q, 0.0), 1.0) * self.count))
        cumulative = 0
        for i, c in enumerate(self.counts):
            cumulative += c
            if cumulative >= target:
                return self.bounds[min(i, len(self.bounds) - 1)]
        return self.bounds[-1]  # pragma: no cover - cumulative == count above

    @property
    def overflow(self) -> int:
        """Observations above the last finite bound (the ``+Inf`` bucket)."""
        return self.counts[-1]

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observed durations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def cumulative(self) -> List[int]:
        """Cumulative bucket counts, Prometheus-style (last == ``count``)."""
        out: List[int] = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    def clone(self) -> "LatencyHistogram":
        """An independent copy (same bounds, copied counts)."""
        out = LatencyHistogram(self.bounds)
        out.counts = list(self.counts)
        out.count = self.count
        out.sum = self.sum
        return out

    def as_dict(self) -> Dict[str, object]:
        """Serialise to a JSON-ready dict (inverse of :meth:`from_dict`)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "LatencyHistogram":
        """Rebuild a histogram from :meth:`as_dict` output."""
        out = cls(tuple(float(b) for b in payload["bounds"]))  # type: ignore[union-attr]
        counts = [int(c) for c in payload["counts"]]  # type: ignore[union-attr]
        if len(counts) != len(out.counts):
            raise ValueError(
                f"counts length {len(counts)} does not match "
                f"{len(out.counts)} buckets"
            )
        out.counts = counts
        out.count = int(payload.get("count", sum(counts)))  # type: ignore[arg-type]
        out.sum = float(payload.get("sum", 0.0))  # type: ignore[arg-type]
        return out

    def as_summary(self) -> Dict[str, float]:
        """Headline numbers for stats payloads: count, mean, p50/p95/p99 (ms)."""
        return {
            "count": float(self.count),
            "mean_ms": self.mean * 1e3,
            "p50_ms": self.percentile(0.50) * 1e3,
            "p95_ms": self.percentile(0.95) * 1e3,
            "p99_ms": self.percentile(0.99) * 1e3,
        }


def merge_histograms(
    histograms: Sequence[LatencyHistogram],
) -> LatencyHistogram:
    """Fold a sequence of same-bounds histograms into a fresh one."""
    if not histograms:
        return LatencyHistogram()
    out = histograms[0].clone()
    for h in histograms[1:]:
        out.merge(h)
    return out


# ---------------------------------------------------------- request context

_REQUEST_ID: ContextVar[Optional[str]] = ContextVar("repro_request_id", default=None)
_NET_ID: ContextVar[Optional[str]] = ContextVar("repro_net_id", default=None)


@contextmanager
def request_context(
    request_id: Optional[str], net_id: Optional[str] = None
) -> Iterator[None]:
    """Scope the daemon-assigned request/net identity over a code region.

    The serve daemon stamps every route request with a ``request_id`` and
    ships it inside the task tuple; the pool worker re-enters this
    context, so every span closed and every ``net_routed`` event emitted
    underneath carries the id — the hook that lets
    :func:`repro.obs.trace.chrome_trace` stitch one request's work into a
    connected lane across process boundaries.
    """
    token_r = _REQUEST_ID.set(request_id)
    token_n = _NET_ID.set(net_id)
    try:
        yield
    finally:
        _REQUEST_ID.reset(token_r)
        _NET_ID.reset(token_n)


def current_request_id() -> Optional[str]:
    """The request id of the enclosing :func:`request_context` (or None)."""
    return _REQUEST_ID.get()


def current_net_id() -> Optional[str]:
    """The net id of the enclosing :func:`request_context` (or None)."""
    return _NET_ID.get()


# --------------------------------------------------- exposition parse/check

_EXPO_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)(?:\s+\d+)?$"
)


class ExpositionSample:
    """One parsed sample line: metric name, labels, float value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, str], value: float) -> None:
        self.name = name
        self.labels = labels
        self.value = value

    def __repr__(self) -> str:
        return f"ExpositionSample({self.name!r}, {self.labels!r}, {self.value!r})"


class Exposition:
    """A parsed Prometheus text exposition (types, help, samples)."""

    def __init__(self) -> None:
        #: ``family name -> type`` from ``# TYPE`` lines.
        self.types: Dict[str, str] = {}
        #: ``family name -> help text`` from ``# HELP`` lines.
        self.help: Dict[str, str] = {}
        #: Every sample line, in file order.
        self.samples: List[ExpositionSample] = []

    def value(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> Optional[float]:
        """The first sample matching ``name`` (and ``labels``, when given)."""
        for s in self.samples:
            if s.name != name:
                continue
            if labels is not None and any(
                s.labels.get(k) != v for k, v in labels.items()
            ):
                continue
            return s.value
        return None

    def buckets(self, family: str) -> List[Tuple[str, Dict[str, str], float]]:
        """The ``<family>_bucket`` samples as ``(le, labels, count)`` rows."""
        out: List[Tuple[str, Dict[str, str], float]] = []
        for s in self.samples:
            if s.name == family + "_bucket" and "le" in s.labels:
                rest = {k: v for k, v in s.labels.items() if k != "le"}
                out.append((s.labels["le"], rest, s.value))
        return out


def _parse_labels(raw: str) -> Dict[str, str]:
    """Parse the inside of ``{...}`` into a label dict (unescaping values)."""
    labels: Dict[str, str] = {}
    # label="value" pairs; values may contain escaped quotes/backslashes.
    for m in re.finditer(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"', raw):
        value = m.group(2)
        value = (
            value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
        )
        labels[m.group(1)] = value
    return labels


def _parse_value(raw: str) -> float:
    """Parse a sample value, accepting the ``+Inf``/``-Inf``/``NaN`` forms."""
    lowered = raw.lower()
    if lowered in ("+inf", "inf"):
        return math.inf
    if lowered == "-inf":
        return -math.inf
    if lowered == "nan":
        return math.nan
    return float(raw)


def parse_prometheus_text(text: str) -> Exposition:
    """Parse Prometheus text exposition into an :class:`Exposition`.

    Raises :class:`ValueError` on lines that are neither comments, blank,
    nor well-formed samples — the strictness ``repro top`` and the CI
    smoke check rely on to catch a malformed ``/metrics`` body.
    """
    expo = Exposition()
    for lineno, line in enumerate(text.splitlines(), 1):
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("# TYPE "):
            parts = stripped.split(None, 3)
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE comment")
            expo.types[parts[2]] = parts[3]
            continue
        if stripped.startswith("# HELP "):
            parts = stripped.split(None, 3)
            if len(parts) < 4:
                raise ValueError(f"line {lineno}: malformed HELP comment")
            expo.help[parts[2]] = parts[3]
            continue
        if stripped.startswith("#"):
            continue
        m = _SAMPLE_RE.match(stripped)
        if m is None:
            raise ValueError(f"line {lineno}: unparseable sample {stripped!r}")
        labels = _parse_labels(m.group("labels") or "")
        try:
            value = _parse_value(m.group("value"))
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: bad sample value {m.group('value')!r}"
            ) from exc
        expo.samples.append(ExpositionSample(m.group("name"), labels, value))
    return expo


def _family_of(sample_name: str, types: Dict[str, str]) -> str:
    """The declared family a sample belongs to (suffix-aware)."""
    for suffix in ("_bucket", "_sum", "_count", "_total"):
        if sample_name.endswith(suffix) and sample_name[: -len(suffix)] in types:
            return sample_name[: -len(suffix)]
    if sample_name in types:
        return sample_name
    if sample_name.endswith("_total") and sample_name in types:
        return sample_name
    return sample_name


def validate_exposition(text: str) -> List[str]:
    """Structural problems in a Prometheus exposition ([] when valid).

    Checks: every line parses; metric names match the exposition charset;
    every sample's family carries exactly one ``# TYPE`` (and a
    ``# HELP``); histogram families have cumulative, monotone buckets
    whose ``+Inf`` count equals ``_count``, plus a ``_sum``; counter
    family names end in ``_total``. This is the gate the CI serve-smoke
    job runs against a live ``/metrics``.
    """
    problems: List[str] = []
    try:
        expo = parse_prometheus_text(text)
    except ValueError as exc:
        return [str(exc)]
    for name in list(expo.types) + [s.name for s in expo.samples]:
        if not _EXPO_NAME_RE.match(name):
            problems.append(f"invalid metric name {name!r}")
    for family, kind in expo.types.items():
        if kind not in ("counter", "gauge", "summary", "histogram", "untyped"):
            problems.append(f"family {family}: unknown type {kind!r}")
        if kind == "counter" and not family.endswith("_total"):
            problems.append(f"counter family {family} does not end in _total")
        if family not in expo.help:
            problems.append(f"family {family} has no # HELP line")
    seen_families = set()
    for sample in expo.samples:
        family = _family_of(sample.name, expo.types)
        seen_families.add(family)
        if family not in expo.types:
            problems.append(f"sample {sample.name} has no # TYPE declaration")
    for family, kind in expo.types.items():
        if kind != "histogram":
            continue
        count = expo.value(family + "_count")
        total = expo.value(family + "_sum")
        if count is None:
            problems.append(f"histogram {family}: missing _count")
        if total is None:
            problems.append(f"histogram {family}: missing _sum")
        by_labelset: Dict[Tuple[Tuple[str, str], ...], List[Tuple[str, float]]] = {}
        for le, rest, value in expo.buckets(family):
            by_labelset.setdefault(tuple(sorted(rest.items())), []).append(
                (le, value)
            )
        if not by_labelset:
            problems.append(f"histogram {family}: no _bucket samples")
        for labelset, rows in by_labelset.items():
            values = [v for _le, v in rows]
            if values != sorted(values):
                problems.append(
                    f"histogram {family}{dict(labelset)}: buckets not cumulative"
                )
            les = [le for le, _v in rows]
            if "+Inf" not in les:
                problems.append(
                    f"histogram {family}{dict(labelset)}: no +Inf bucket"
                )
            elif not labelset and count is not None:
                inf_value = dict(rows)["+Inf"]
                if inf_value != count:
                    problems.append(
                        f"histogram {family}: +Inf bucket {inf_value} "
                        f"!= _count {count}"
                    )
    return problems


def percentile_from_buckets(
    rows: Sequence[Tuple[float, float]], q: float
) -> float:
    """Quantile ``q`` from parsed ``(le_seconds, cumulative_count)`` rows.

    The consumer-side twin of :meth:`LatencyHistogram.percentile` —
    ``repro top`` applies it to scraped ``_bucket`` samples. Rows must be
    cumulative and sorted by ``le``; returns 0.0 when the histogram is
    empty and the largest finite bound for overflow quantiles.
    """
    if not rows:
        return 0.0
    total = rows[-1][1]
    if total <= 0:
        return 0.0
    target = max(1.0, math.ceil(min(max(q, 0.0), 1.0) * total))
    finite = [le for le, _c in rows if math.isfinite(le)]
    for le, cumulative in rows:
        if cumulative >= target:
            return le if math.isfinite(le) else (finite[-1] if finite else 0.0)
    return finite[-1] if finite else 0.0
