"""End-to-end smoke check of the routing daemon (CI's serve job).

``python -m repro.serve.smoke`` exercises the whole service path the way
a deployment would: start ``repro serve`` as a real subprocess on a Unix
socket with a fresh persistent store, route a small workload containing
repeats over the socket, assert a warm hit rate above zero, and shut the
daemon down cleanly (exit code 0). Any failed step exits non-zero with a
diagnostic, so CI catches daemon bit-rot without the full benchmark.
"""

from __future__ import annotations

import random
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional

from ..geometry.net import Net, random_net
from .client import ServeClient, ServeError

#: Unique patterns in the smoke workload; each is queried twice (the
#: second pass must be served warm).
UNIQUE_NETS = 5


def _workload() -> List[Net]:
    """Ten nets: five unique degree-4..6 patterns, each repeated once."""
    rng = random.Random(2025)
    unique = [
        random_net(4 + i % 3, rng=rng, name=f"smoke{i}")
        for i in range(UNIQUE_NETS)
    ]
    repeats = [
        Net(pins=n.pins, name=f"{n.name}/again") for n in unique
    ]
    return unique + repeats


def _wait_for_socket(path: str, proc: subprocess.Popen, timeout: float = 60.0) -> ServeClient:
    """Poll until the daemon accepts connections (or its process dies)."""
    deadline = time.time() + timeout
    last_error: Optional[Exception] = None
    while time.time() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"daemon exited early with code {proc.returncode}"
            )
        try:
            client = ServeClient(socket_path=path, timeout=30.0)
            client.ping()
            return client
        except (OSError, ServeError) as exc:
            last_error = exc
            time.sleep(0.2)
    raise TimeoutError(f"daemon never came up: {last_error}")


def main() -> int:
    """Run the smoke sequence; return a process exit code."""
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        socket_path = str(Path(tmp) / "patlabor.sock")
        store_path = str(Path(tmp) / "cache.sqlite")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--socket", socket_path,
                "--store", store_path,
                "--workers", "2",
            ],
        )
        try:
            client = _wait_for_socket(socket_path, proc)
            with client:
                nets = _workload()
                results = client.route(nets)
                if len(results) != len(nets):
                    print(f"FAIL: {len(results)} results for {len(nets)} nets")
                    return 1
                for name, front in results:
                    if not front:
                        print(f"FAIL: empty front for {name}")
                        return 1
                stats = client.stats()
                print(
                    f"routed {stats['nets']} nets in {stats['requests']} "
                    f"request(s); warm_hit_rate={stats['warm_hit_rate']:.2f} "
                    f"(memory={stats['served_memory']} "
                    f"store={stats['served_store']} "
                    f"routed={stats['served_routed']})"
                )
                if stats["warm_hit_rate"] <= 0.0:
                    print("FAIL: repeated nets produced no warm hits")
                    return 1
                client.shutdown()
            rc = proc.wait(timeout=60)
            if rc != 0:
                print(f"FAIL: daemon exited with code {rc} after shutdown")
                return 1
        finally:
            if proc.poll() is None:  # pragma: no cover - only on failure
                proc.terminate()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
        print("serve smoke OK")
        return 0


if __name__ == "__main__":
    sys.exit(main())
