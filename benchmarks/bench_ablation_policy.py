"""Ablation A2 — the pin-selection policy π.

Compares PatLabor's local search under three policies on the same large
nets: the shipped trained weights, uniformly random selection, and a
farthest-only policy (a2 = 1, rest 0). Quality = hypervolume of the
returned front against a per-net reference point. The trained policy must
not lose to random selection on aggregate.

Timed kernel: one local-search route with the trained policy.
"""

import random

from repro.core.pareto import hypervolume
from repro.core.patlabor import PatLabor, PatLaborConfig
from repro.core.policy import PolicyParams, SelectionPolicy
from repro.eval.reporting import format_table
from repro.geometry.net import random_net

from conftest import write_artifact

NUM_NETS = 5
DEGREE = 24


class RandomPolicy(SelectionPolicy):
    """Uniform random pin selection (the training baseline)."""

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self._rng = random.Random(seed)

    def select(self, net, tree, k):
        idx = list(range(len(net.sinks)))
        self._rng.shuffle(idx)
        return idx[:k]


def test_ablation_policy(benchmark):
    rng = random.Random(21)
    nets = [random_net(DEGREE, rng=rng) for _ in range(NUM_NETS)]

    policies = {
        "trained": SelectionPolicy(),
        "random": RandomPolicy(seed=1),
        "farthest-only": SelectionPolicy(
            {DEGREE: PolicyParams(0.0, 1.0, 0.0, 0.0)}
        ),
    }
    scores = {}
    fronts = {}
    for name, policy in policies.items():
        total = 0.0
        sizes = []
        for net in nets:
            router = PatLabor(
                policy=policy, config=PatLaborConfig(seed=7)
            )
            front = router.route(net)
            ref = (2.0 * net.star_wirelength(), 2.0 * net.star_wirelength())
            total += hypervolume(front, ref) / (ref[0] * ref[1])
            sizes.append(len(front))
        scores[name] = total / NUM_NETS
        fronts[name] = sum(sizes) / len(sizes)

    table = format_table(
        ["policy", "mean norm. hypervolume", "mean front size"],
        [
            [name, f"{scores[name]:.4f}", f"{fronts[name]:.1f}"]
            for name in policies
        ],
        title=f"Ablation — selection policy (degree-{DEGREE}, {NUM_NETS} nets)",
    )
    write_artifact("ablation_policy.txt", table)

    assert scores["trained"] >= scores["random"] - 0.01

    router = PatLabor(config=PatLaborConfig(seed=7))
    net = nets[0]
    benchmark.pedantic(lambda: router.route(net), rounds=1, iterations=2)
