"""Tests for the ``repro.engine`` layer: protocol, registry, middleware,
engine assembly, and the symmetry-canonicalizing cache's transparency."""

import random

import pytest

from repro.core.cache import CachedRouter, canonical_key, translation_key
from repro.core.patlabor import PatLabor, PatLaborConfig
from repro.engine import (
    EngineSpec,
    FunctionRouter,
    Router,
    RouterCapabilities,
    available_routers,
    build_engine,
    create_router,
    register_router,
    router_entry,
)
from repro.exceptions import DegreeTooLargeError, InvalidNetError
from repro.geometry.net import Net, random_net
from repro.geometry.point import Point
from repro.geometry.transforms import ALL_TRANSFORMS
from repro.routing.validate import check_spans_net
from repro import obs


def _objectives(front, ndigits=9):
    return [(round(w, ndigits), round(d, ndigits)) for w, d, _ in front]


def _dihedral_copy(net, transform, dx=0.0, dy=0.0, name=""):
    """The net's image under a D4 element about its source, then a shift."""
    x0, y0 = net.source
    pins = []
    for p in net.pins:
        cx, cy = transform.apply_point(p.x - x0, p.y - y0)
        pins.append(Point(cx + x0 + dx, cy + y0 + dy))
    return Net(pins=tuple(pins), name=name or f"{net.name}/{transform.name}")


class TestRegistry:
    def test_expected_routers_registered(self):
        names = available_routers()
        for expected in ("patlabor", "pareto-dw", "pareto-ks", "salt",
                         "ysd", "pd", "rsmt", "rsma"):
            assert expected in names

    def test_lookup_is_case_and_separator_insensitive(self):
        for alias in ("PatLabor", "patlabor", "PATLABOR", "pat_labor"):
            assert router_entry(alias).name == "patlabor"
        assert router_entry("ParetoKS").name == "pareto-ks"
        assert router_entry("Pareto-DW").name == "pareto-dw"

    def test_unknown_name_lists_known_routers(self):
        with pytest.raises(KeyError, match="patlabor"):
            create_router("no-such-router")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_router("patlabor")(lambda: None)

    def test_factory_options_forwarded(self):
        router = create_router("patlabor", config=PatLaborConfig(lam=5))
        assert router.config.lam == 5
        assert router.capabilities.exact_up_to == 5

    def test_every_router_satisfies_protocol_and_routes(self):
        net = random_net(5, rng=random.Random(0), name="probe")
        for name in available_routers():
            router = create_router(name)
            assert isinstance(router, Router)
            assert router.name
            assert isinstance(router.capabilities, RouterCapabilities)
            front = router.route(net)
            assert front, f"{name} returned an empty front"
            for w, d, tree in front:
                assert w > 0 and d > 0
                check_spans_net(tree)

    def test_single_tree_routers_return_singleton_fronts(self):
        net = random_net(6, rng=random.Random(1))
        for name in ("rsmt", "rsma"):
            router = create_router(name)
            assert not router.capabilities.pareto
            assert len(router.route(net)) == 1


class TestMiddleware:
    def test_validating_router_rejects_non_net(self):
        engine = build_engine("patlabor")
        with pytest.raises(InvalidNetError, match="expects a"):
            engine.route([(0, 0), (1, 1)])

    def test_validating_router_enforces_max_degree_at_boundary(self):
        calls = []

        @register_router("test-capped", summary="test stub")
        def _make():
            def route(net):
                calls.append(net)
                return []

            return FunctionRouter(
                "test-capped", route, RouterCapabilities(max_degree=4)
            )

        engine = build_engine("test-capped")
        big = random_net(6, rng=random.Random(2))
        with pytest.raises(DegreeTooLargeError):
            engine.route(big)
        assert calls == []  # rejected before the router ever ran

    def test_attribute_forwarding_through_stack(self):
        engine = build_engine(
            EngineSpec(router="patlabor", cache="translation")
        )
        net = random_net(5, rng=random.Random(3))
        engine.route(net)
        engine.route(net)
        # hits/misses live on the cache layer, dispatch_tier on PatLabor;
        # both are reachable from the assembled stack.
        assert engine.hits == 1 and engine.misses == 1
        assert engine.dispatch_tier(net) == "dw"
        assert engine.name == "patlabor"

    def test_engine_results_match_bare_router(self):
        net = random_net(7, rng=random.Random(4))
        bare = PatLabor().route(net)
        engine = build_engine(EngineSpec(router="patlabor", cache="symmetry"))
        assert _objectives(engine.route(net)) == _objectives(bare)

    def test_every_router_gets_net_routed_events(self):
        """The point of hoisting events into middleware: baselines too."""
        obs.reset()
        obs.events_enable()
        try:
            net = random_net(5, rng=random.Random(5), name="salted")
            build_engine("salt").route(net)
            events = obs.get_event_log().events()
        finally:
            obs.events_disable()
            obs.reset()
        routed = [e for e in events if e["kind"] == "net_routed"]
        assert len(routed) == 1
        assert routed[0]["net"] == "salted"
        assert routed[0]["tier"] == "salt"  # no dispatch_tier: router name
        assert routed[0]["front_size"] >= 1

    def test_cache_hits_do_not_emit_net_routed(self):
        obs.reset()
        obs.events_enable()
        try:
            net = random_net(5, rng=random.Random(6), name="once")
            engine = build_engine(
                EngineSpec(router="patlabor", cache="translation")
            )
            engine.route(net)
            engine.route(net)
            events = obs.get_event_log().events()
        finally:
            obs.events_disable()
            obs.reset()
        assert sum(e["kind"] == "net_routed" for e in events) == 1

    def test_unknown_cache_mode_rejected(self):
        with pytest.raises(ValueError, match="cache mode"):
            build_engine(EngineSpec(router="patlabor", cache="bogus"))


class TestSymmetryCacheTransparency:
    """Property: the canonicalizing cache is invisible to callers.

    For random nets and random dihedral/translated copies, a cache hit
    must return fronts objective-identical to a cold route of the copy,
    with structurally valid trees at the copy's exact coordinates.
    """

    def test_dihedral_and_translated_copies_hit_and_match_cold_routes(self):
        rng = random.Random(1234)
        for trial in range(6):
            net = random_net(
                rng.randint(4, 6), rng=rng, grid=9, name=f"base{trial}"
            )
            cache = CachedRouter(PatLabor(), canonicalize="symmetry")
            cache.route(net)
            assert cache.misses == 1
            for i, t in enumerate(random.Random(trial).sample(
                    list(ALL_TRANSFORMS), 4)):
                copy = _dihedral_copy(
                    net, t, dx=13.0 * i - 7.0, dy=5.0 * i + 11.0
                )
                served = cache.route(copy)
                assert cache.misses == 1, (
                    f"{copy.name} missed the symmetry cache"
                )
                cold = PatLabor().route(copy)
                assert _objectives(served) == _objectives(cold)
                for _w, _d, tree in served:
                    check_spans_net(tree)
                    assert tree.net.key() == copy.key()

    def test_translation_only_cache_misses_mirrored_copies(self):
        net = random_net(5, rng=random.Random(7), grid=8)
        mirror = _dihedral_copy(net, ALL_TRANSFORMS[2])  # flip_x
        trans = CachedRouter(PatLabor(), canonicalize="translation")
        sym = CachedRouter(PatLabor(), canonicalize="symmetry")
        for router in (trans, sym):
            router.route(net)
            router.route(mirror)
        assert trans.hits == 0 and trans.misses == 2
        assert sym.hits == 1 and sym.misses == 1

    def test_canonical_key_equals_translation_key_semantics_for_identity(self):
        # A net and its pure translate share a canonical key too.
        net = random_net(6, rng=random.Random(8))
        moved = net.translated(41.0, -17.5)
        assert canonical_key(net)[0] == canonical_key(moved)[0]
        # And canonicalization never splits what translation joins.
        assert translation_key(net) == translation_key(moved)

    def test_symmetric_copies_share_one_entry_all_eight(self):
        net = random_net(5, rng=random.Random(9), grid=8)
        keys = {canonical_key(_dihedral_copy(net, t))[0]
                for t in ALL_TRANSFORMS}
        assert len(keys) == 1


class TestPointPolicies:
    """Frontier point-selection policies (the negotiation/serve hook)."""

    def _front(self):
        # A strict sorted front: w ascending, d descending.
        return [
            (10.0, 40.0, "a"),
            (14.0, 22.0, "b"),
            (20.0, 20.0, "c"),
        ]

    def _net(self):
        return Net.from_points((0, 0), [(10, 0), (0, 10)], name="p")

    def test_named_policies_resolve_and_select(self):
        from repro.engine import resolve_point_policy

        net, front = self._net(), self._front()
        assert resolve_point_policy("min_wirelength").select(net, front) == 0
        assert resolve_point_policy("min_wl").select(net, front) == 0
        assert resolve_point_policy("min_delay").select(net, front) == 2
        knee = resolve_point_policy("knee").select(net, front)
        assert knee in range(len(front))

    def test_resolution_is_case_and_separator_insensitive(self):
        from repro.engine import resolve_point_policy

        a = resolve_point_policy("MIN-DELAY")
        b = resolve_point_policy("min_delay")
        assert a.name == b.name == "min_delay"

    def test_budget_policy_picks_min_wire_within_slack(self):
        from repro.engine import resolve_point_policy

        net, front = self._net(), self._front()
        lb = net.delay_lower_bound()
        # Generous slack: every point feasible -> min wirelength wins.
        wide = resolve_point_policy(f"budget:{40.0 / lb}")
        assert wide.select(net, front) == 0
        # Tight slack: only the min-delay point fits.
        tight = resolve_point_policy("budget:0")
        assert tight.select(net, front) == 2

    def test_budget_policy_name_round_trips(self):
        from repro.engine import resolve_point_policy

        assert resolve_point_policy("budget:0.25").name == "budget:0.25"

    def test_unknown_and_malformed_specs_raise(self):
        from repro.engine import resolve_point_policy
        from repro.exceptions import PolicyError

        for spec in ("nope", "budget:", "budget:x", "budget:-1"):
            with pytest.raises(PolicyError):
                resolve_point_policy(spec)

    def test_empty_front_raises(self):
        from repro.engine import resolve_point_policy
        from repro.exceptions import PolicyError

        with pytest.raises(PolicyError):
            resolve_point_policy("min_delay").select(self._net(), [])

    def test_route_select_returns_front_and_valid_index(self):
        from repro.engine import route_select

        net = random_net(5, rng=random.Random(77), name="sel")
        router = PatLabor()
        front, chosen = route_select(router, net, "min_delay")
        assert front == router.route(net)
        assert 0 <= chosen < len(front)
        assert front[chosen][1] == min(d for _w, d, _t in front)

    def test_capabilities_flag_matches_router_kind(self):
        assert create_router("patlabor").capabilities.frontier_selection
        assert not create_router("rsmt").capabilities.frontier_selection
        assert not create_router("rsma").capabilities.frontier_selection
