"""Worker-pool side of the routing service: one resident engine per worker.

The daemon dispatches net payloads to a ``ProcessPoolExecutor`` whose
workers run the functions in this module. The engine — router, lookup
table, cache tiers — is built **exactly once per worker**, inside
:func:`init_worker` (the pool initializer), and parked in a module
global. Tasks then carry only the net payload; nothing heavy is ever
re-pickled per request.

The lookup table is additionally pre-loaded in the *parent* before the
pool is created (:func:`preload_shared_state`), so on fork start methods
every worker inherits the parsed table copy-on-write and ``init_worker``
finds it already cached; on spawn methods each worker loads it once from
disk. Either way: once per worker, never per task.

Every worker resolves its router through the standard
:func:`repro.engine.build.build_engine` middleware stack, so serve
traffic gets the same validation, canonicalizing cache (optionally
backed by the shared persistent store), and observability as every other
entry point.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from .. import obs
from ..engine.build import EngineSpec, build_engine
from ..engine.protocol import Router, route_select
from .protocol import net_from_payload, result_to_payload


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to assemble its engine stack.

    A frozen, pickle-friendly description shipped once through the pool
    initializer (never per task). ``use_default_lut`` arms PatLabor with
    the shipped degree-4..6 table; ``store_path`` attaches the shared
    persistent cache tier; ``telemetry`` turns the worker's own obs
    registry, event log, and trace collector on so the daemon can drain
    per-worker metrics (:func:`drain_worker_telemetry`) at shutdown.
    """

    method: str = "patlabor"
    cache_mode: Optional[str] = "symmetry"
    cache_entries: int = 100_000
    store_path: Optional[str] = None
    use_default_lut: bool = True
    telemetry: bool = False
    router_options: Dict[str, Any] = field(default_factory=dict)

    def build(self) -> Router:
        """Assemble the engine stack this spec describes."""
        options: Dict[str, Any] = dict(self.router_options)
        if self.use_default_lut and self.method == "patlabor":
            from ..lut.default import default_table

            options.setdefault("lut", default_table())
        return build_engine(
            EngineSpec(
                router=self.method,
                router_options=options,
                cache=self.cache_mode,
                cache_entries=self.cache_entries,
                cache_store=self.store_path,
            )
        )


#: The worker-resident engine, built once by :func:`init_worker`.
_ENGINE: Optional[Router] = None


def preload_shared_state(spec: WorkerSpec) -> None:
    """Load fork-shareable read-only state in the parent process.

    Called by the server before creating the pool: parsing the ~2 MB
    lookup-table JSON here means fork-started workers inherit the parsed
    table copy-on-write instead of re-reading it, and the first request
    never stalls behind a per-worker load.
    """
    if spec.use_default_lut and spec.method == "patlabor":
        from ..lut.default import default_table

        default_table()


def init_worker(spec: WorkerSpec) -> None:
    """Pool initializer: build this worker's engine once, park it globally.

    With ``spec.telemetry`` set, the worker's process-local obs registry,
    event log, and trace collector are enabled too, so per-worker numbers
    exist for the daemon to fold back (histogram merges are associative,
    so the fold order across workers never changes the daemon's totals).
    """
    global _ENGINE
    if spec.telemetry:
        obs.enable()
        obs.events_enable()
        obs.trace_enable()
    _ENGINE = spec.build()


def route_payload(
    payload: Dict[str, Any],
    with_trees: bool = False,
    request_id: Optional[str] = None,
    net_id: Optional[str] = None,
    select: Optional[str] = None,
) -> Dict[str, Any]:
    """Route one net payload on the resident engine (runs in a worker).

    Returns the response entry for this net plus accounting the server
    aggregates: which cache tier served it (``memory`` / ``store`` /
    ``routed``, derived from the engine's counter deltas) and the worker
    wall time.

    ``request_id`` / ``net_id`` are the daemon-assigned trace identity:
    the route runs inside :func:`repro.obs.request_context`, so worker-
    side spans and ``net_routed`` events carry them, and they ride the
    result back (``request_id`` in the out dict) for end-to-end checks.

    ``select`` is an optional frontier point-policy spec (see
    :func:`repro.engine.resolve_point_policy`); when given, the chosen
    index rides the result as ``"chosen"`` — the same selection hook the
    congestion negotiator uses, applied worker-side so the whole front
    never has to cross the wire just to pick one tree.
    """
    if _ENGINE is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker pool used before init_worker")
    engine = _ENGINE
    net = net_from_payload(payload)
    chosen: Optional[int] = None
    mem0 = int(getattr(engine, "hits", 0))
    store0 = int(getattr(engine, "store_hits", 0))
    with obs.request_context(request_id, net_id):
        t0 = time.perf_counter()
        if select is not None:
            front, chosen = route_select(engine, net, select)
        else:
            front = engine.route(net)
        seconds = time.perf_counter() - t0
        obs.timer_observe("serve.worker_net_seconds", seconds)
    if int(getattr(engine, "hits", 0)) > mem0:
        served = "memory"
    elif int(getattr(engine, "store_hits", 0)) > store0:
        served = "store"
    else:
        served = "routed"
    out = result_to_payload(
        net.name or "net", front, served, with_trees=with_trees
    )
    out["seconds"] = seconds
    if chosen is not None:
        out["chosen"] = chosen
    if request_id is not None:
        out["request_id"] = request_id
    return out


def worker_ready() -> Dict[str, Any]:
    """Readiness probe body: proof this worker's initializer completed.

    The daemon submits one of these per worker after pool creation; the
    returned dict doubles as the evidence behind ``/readyz`` (pid shows
    which worker answered, store flags show the persistent tier is
    attached and not degraded).
    """
    store = getattr(_ENGINE, "store", None) if _ENGINE is not None else None
    return {
        "pid": os.getpid(),
        "engine": _ENGINE is not None,
        "store_attached": store is not None,
        "store_healthy": bool(getattr(store, "healthy", True)),
    }


def drain_worker_telemetry() -> Dict[str, Any]:
    """This worker's obs state, serialised for a daemon-side merge.

    Returns the registry snapshot (with raw timer samples), the buffered
    structured events, and the buffered trace events; the worker's
    buffers are cleared so a later drain ships only new data. Harmless
    (all empty) when the worker runs without telemetry.
    """
    return {
        "pid": os.getpid(),
        "snapshot": obs.get_registry().snapshot(with_samples=True),
        "events": obs.drain_events(),
        "trace": obs.get_trace_collector().drain(),
    }


def flush_worker() -> Dict[str, float]:
    """Flush the resident engine's persistent tier; return cache counters.

    The server broadcasts this at shutdown so every worker's session
    hit/miss statistics land in the store's meta table before the pool
    dies, keeping ``repro cache stats`` truthful.
    """
    counters = {
        "hits": float(getattr(_ENGINE, "hits", 0)),
        "store_hits": float(getattr(_ENGINE, "store_hits", 0)),
        "misses": float(getattr(_ENGINE, "misses", 0)),
    }
    close = getattr(_ENGINE, "close", None)
    if callable(close):
        close()
    return counters
