"""Small statistics toolkit for experiment reporting.

Paper-artefact benchmarks report sample means over scaled-down pools;
these helpers quantify how trustworthy those means are (bootstrap
confidence intervals) and standardise the summary numbers
(mean / median / std / min / max) the artefacts print.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class Summary:
    """Five-number summary of a sample."""

    count: int
    mean: float
    median: float
    std: float
    minimum: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return (
            f"n={self.count} mean={self.mean:.4g} median={self.median:.4g} "
            f"std={self.std:.4g} range=[{self.minimum:.4g}, {self.maximum:.4g}]"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Five-number summary (population std; raises on empty input)."""
    if not values:
        raise ValueError("cannot summarise an empty sample")
    xs = sorted(float(v) for v in values)
    n = len(xs)
    mean = sum(xs) / n
    var = sum((x - mean) ** 2 for x in xs) / n
    mid = n // 2
    median = xs[mid] if n % 2 else (xs[mid - 1] + xs[mid]) / 2.0
    return Summary(
        count=n,
        mean=mean,
        median=median,
        std=var**0.5,
        minimum=xs[0],
        maximum=xs[-1],
    )


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
    statistic=None,
) -> Tuple[float, float]:
    """Percentile bootstrap confidence interval for a statistic (mean by
    default) of the sample."""
    if not values:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    stat = statistic or (lambda xs: sum(xs) / len(xs))
    rng = random.Random(seed)
    xs = [float(v) for v in values]
    n = len(xs)
    estimates: List[float] = []
    for _ in range(resamples):
        sample = [xs[rng.randrange(n)] for _ in range(n)]
        estimates.append(stat(sample))
    estimates.sort()
    alpha = (1.0 - confidence) / 2.0
    lo = estimates[max(0, int(alpha * resamples))]
    hi = estimates[min(resamples - 1, int((1.0 - alpha) * resamples))]
    return (lo, hi)


def mean_with_ci(
    values: Sequence[float], confidence: float = 0.95, seed: int = 0
) -> str:
    """``"0.123 [0.101, 0.145]"`` — the string the artefacts embed."""
    s = summarize(values)
    lo, hi = bootstrap_ci(values, confidence=confidence, seed=seed)
    return f"{s.mean:.4g} [{lo:.4g}, {hi:.4g}]"
