"""Name-based router registry: one resolution point for the whole stack.

``eval.runner``, ``core.batch``, the CLI, and the design flow all used to
hand-maintain their own method dicts; this module replaces those with a
single registry. Algorithm adapters register a factory under a canonical
name with :func:`register_router`; callers resolve instances with
:func:`create_router`. Lookup is forgiving about case and separators, so
``"PatLabor"``, ``"patlabor"``, and ``"Pareto-KS"`` all resolve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from .protocol import Router

RouterFactory = Callable[..., Router]


@dataclass(frozen=True)
class RouterEntry:
    """One registered router: its factory plus display metadata."""

    name: str
    display_name: str
    summary: str
    factory: RouterFactory = field(repr=False)


_ENTRIES: Dict[str, RouterEntry] = {}


def _normalize(name: str) -> str:
    """Case/separator-insensitive lookup key (``Pareto-KS`` == ``paretoks``)."""
    return name.lower().replace("-", "").replace("_", "").replace(" ", "")


def register_router(
    name: str, *, display_name: str = "", summary: str = ""
) -> Callable[[RouterFactory], RouterFactory]:
    """Class/function decorator registering a router factory under ``name``.

    ``display_name`` is the label evaluation tables use (defaults to
    ``name``); ``summary`` is the one-liner shown by ``patlabor routers``.
    Registering a name twice is a programming error and raises
    ``ValueError`` — shadowing a router silently would make resolution
    order-dependent.
    """

    def deco(factory: RouterFactory) -> RouterFactory:
        key = _normalize(name)
        if key in _ENTRIES:
            raise ValueError(f"router {name!r} is already registered")
        _ENTRIES[key] = RouterEntry(
            name=name,
            display_name=display_name or name,
            summary=summary,
            factory=factory,
        )
        return factory

    return deco


def router_entry(name: str) -> RouterEntry:
    """The :class:`RouterEntry` for ``name`` (raises ``KeyError`` if absent)."""
    key = _normalize(name)
    if key not in _ENTRIES:
        known = ", ".join(sorted(e.name for e in _ENTRIES.values()))
        raise KeyError(f"unknown router {name!r}; registered: {known}")
    return _ENTRIES[key]


def create_router(name: str, **options: object) -> Router:
    """Instantiate the router registered under ``name``.

    Keyword options are passed through to the factory (each factory
    documents its own tunables; unknown options raise ``TypeError``).
    """
    return router_entry(name).factory(**options)


def available_routers() -> Tuple[str, ...]:
    """Canonical names of every registered router, sorted."""
    return tuple(sorted(e.name for e in _ENTRIES.values()))


def display_names() -> List[str]:
    """Display names (table labels) of every registered router, sorted."""
    return sorted(e.display_name for e in _ENTRIES.values())
