"""Exporters: metrics snapshots as JSON files and Prometheus text.

Two formats cover the two consumers:

* **JSON** (:func:`write_bench_json`, :func:`dump_json`) — the structured
  ``BENCH_<name>.json`` artefacts that ``benchmarks/`` writes and later
  perf PRs diff against;
* **Prometheus text** (:func:`to_prometheus`) — the ``# TYPE``-annotated
  exposition format, so a scraping deployment needs no adapter.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, Optional, Union

from .registry import Registry, get_registry

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def snapshot(registry: Optional[Registry] = None) -> Dict[str, object]:
    """The registry's current metrics as a plain JSON-ready dict."""
    return (registry or get_registry()).snapshot()


def dump_json(
    path: Union[str, Path],
    *,
    registry: Optional[Registry] = None,
    extra: Optional[Dict[str, object]] = None,
) -> Path:
    """Write the full snapshot (plus caller ``extra`` keys) to ``path``."""
    payload: Dict[str, object] = dict(extra or {})
    payload["metrics"] = snapshot(registry)
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def write_bench_json(
    name: str,
    *,
    directory: Union[str, Path] = ".",
    registry: Optional[Registry] = None,
    extra: Optional[Dict[str, object]] = None,
) -> Path:
    """Write ``BENCH_<name>.json`` under ``directory`` and return its path.

    ``extra`` keys land at the top level next to ``"metrics"`` — put the
    headline numbers (cache hit-rate, nets/sec) there so downstream diffs
    don't need to dig through the span tree.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return dump_json(directory / f"BENCH_{name}.json", registry=registry, extra=extra)


def _prom_name(name: str) -> str:
    return "repro_" + _NAME_RE.sub("_", name)


def _prom_label_value(value: str) -> str:
    """Escape a label value per the exposition format spec.

    Backslash, double quote, and newline are the three characters the
    format requires escaping inside ``label="..."``.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def to_prometheus(registry: Optional[Registry] = None) -> str:
    """The snapshot in Prometheus text exposition format.

    Counters map directly (with the conventional ``_total`` suffix),
    gauges map directly, and timers and spans become summaries
    (``_count`` / ``_sum`` plus ``{quantile=...}`` sample lines; span
    paths are carried in an escaped ``path`` label). Lines are emitted in
    sorted name order per family, so output is deterministic and
    diff-friendly.
    """
    snap = snapshot(registry)
    lines = []
    for name, value in sorted(snap["counters"].items()):  # type: ignore[union-attr]
        metric = _prom_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in sorted(snap["gauges"].items()):  # type: ignore[union-attr]
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    for name, stat in sorted(snap["timers"].items()):  # type: ignore[union-attr]
        metric = _prom_name(name) + "_seconds"
        lines.append(f"# TYPE {metric} summary")
        for q, quantile in (("p50_s", "0.5"), ("p90_s", "0.9"), ("p99_s", "0.99")):
            lines.append(f'{metric}{{quantile="{quantile}"}} {stat[q]}')
        lines.append(f"{metric}_sum {stat['total_s']}")
        lines.append(f"{metric}_count {stat['count']}")
    for path, stat in sorted(snap["spans"].items()):  # type: ignore[union-attr]
        label = _prom_label_value(path)
        lines.append(
            f'repro_span_seconds_sum{{path="{label}"}} {stat["total_s"]}'
        )
        lines.append(
            f'repro_span_seconds_count{{path="{label}"}} {stat["count"]}'
        )
    return "\n".join(lines) + "\n"
