"""Tests for the routing service (repro.serve): protocol and daemon."""

import random
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.exceptions import SerializationError
from repro.geometry.net import Net, random_net
from repro.obs import parse_prometheus_text, validate_exposition
from repro.serve import (
    METRICS_CONTENT_TYPE,
    ServeClient,
    ServeConfig,
    ServeError,
    ServerThread,
)
from repro.serve.protocol import (
    decode_message,
    encode_message,
    net_from_payload,
    net_to_payload,
    result_front,
    result_to_payload,
)


class TestProtocol:
    def test_message_round_trip(self):
        msg = {"id": 7, "op": "route", "nets": [], "with_trees": True}
        assert decode_message(encode_message(msg)) == msg

    def test_decode_rejects_garbage(self):
        with pytest.raises(SerializationError):
            decode_message(b"not json\n")
        with pytest.raises(SerializationError):
            decode_message(b"[1, 2, 3]\n")

    def test_net_round_trip_is_exact(self):
        net = random_net(6, rng=random.Random(41), name="exact")
        back = net_from_payload(net_to_payload(net))
        assert back.name == net.name
        assert tuple((p.x, p.y) for p in back.pins) == tuple(
            (p.x, p.y) for p in net.pins
        )

    def test_net_payload_validation(self):
        with pytest.raises(SerializationError):
            net_from_payload({"name": "no-pins"})
        with pytest.raises(SerializationError):
            net_from_payload({"pins": []})
        with pytest.raises(SerializationError):
            net_from_payload({"pins": [["x", "y"]]})

    def test_result_round_trip_with_trees(self):
        from repro.core.patlabor import PatLabor

        net = random_net(5, rng=random.Random(42))
        front = PatLabor().route(net)
        payload = result_to_payload(net.name, front, "routed", with_trees=True)
        back = result_front(payload, net)
        assert [(w, d) for w, d, _ in back] == [(w, d) for w, d, _ in front]
        for (_w, _d, tree), (_w2, _d2, orig) in zip(back, front):
            tree.validate()
            assert tuple((p.x, p.y) for p in tree.points) == tuple(
                (p.x, p.y) for p in orig.points
            )

    def test_result_front_without_net_drops_trees(self):
        payload = {"front": [[1.0, 2.0]], "trees": [{"points": [], "parent": []}]}
        assert result_front(payload) == [(1.0, 2.0, None)]


@pytest.fixture(scope="module")
def serve_dir():
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
        yield Path(tmp)


@pytest.fixture(scope="module")
def daemon(serve_dir):
    """One shared daemon on TCP + Unix socket with a persistent store."""
    config = ServeConfig(
        socket_path=str(serve_dir / "serve.sock"),
        host="127.0.0.1",
        port=0,
        workers=2,
        store_path=str(serve_dir / "store.sqlite"),
    )
    with ServerThread(config) as handle:
        yield handle.server


def _client(daemon):
    return ServeClient(host="127.0.0.1", port=daemon.tcp_port)


class TestDaemon:
    def test_ping_over_tcp_and_unix(self, daemon):
        with _client(daemon) as tcp:
            assert tcp.ping()
        with ServeClient(socket_path=daemon.config.socket_path) as unix:
            assert unix.ping()

    def test_route_batch_in_order(self, daemon):
        nets = [
            random_net(4 + i % 3, rng=random.Random(50 + i), name=f"n{i}")
            for i in range(6)
        ]
        with _client(daemon) as client:
            results = client.route(nets)
        assert [name for name, _ in results] == [n.name for n in nets]
        for _name, front in results:
            assert front
            # Fronts arrive sorted by wirelength (engine contract).
            assert [w for w, _d, _t in front] == sorted(
                w for w, _d, _t in front
            )

    def test_repeats_are_served_warm_and_bit_identical(self, daemon):
        net = random_net(5, rng=random.Random(60), name="warmme")
        with _client(daemon) as client:
            first = client.route([net], with_trees=True)
            second = client.route([net], with_trees=True)
            tiers = list(client.route_tiers([net]))
        assert tiers == ["memory"] or tiers == ["store"]
        (name1, front1), (name2, front2) = first[0], second[0]
        assert name1 == name2 == "warmme"
        for (w1, d1, t1), (w2, d2, t2) in zip(front1, front2):
            assert (w1, d1) == (w2, d2)
            t1.validate()
            t2.validate()
            assert tuple((p.x, p.y) for p in t1.points) == tuple(
                (p.x, p.y) for p in t2.points
            )
            assert tuple(t1.parent) == tuple(t2.parent)

    def test_dihedral_image_is_warm(self, daemon):
        net = random_net(5, rng=random.Random(61), name="base")
        mirrored = Net(
            pins=tuple((-p.x, p.y) for p in net.pins),  # type: ignore[arg-type]
            name="mirrored",
        )
        with _client(daemon) as client:
            client.route([net])
            base = dict(client.route([net]))["base"]
            served = dict(client.route([mirrored]))["mirrored"]
        assert [(w, d) for w, d, _ in served] == [(w, d) for w, d, _ in base]

    def test_stats_shape_and_rates(self, daemon):
        with _client(daemon) as client:
            client.route([random_net(4, rng=random.Random(62), name="s0")])
            stats = client.stats()
        for field in (
            "requests", "nets", "requests_per_second", "nets_per_second",
            "served_memory", "served_store", "served_routed",
            "warm_hit_rate", "store_hit_rate", "queue_depth_max",
        ):
            assert field in stats
        assert stats["nets"] >= 1 and stats["requests"] >= 2
        assert stats["queue_depth"] == 0
        assert 0.0 <= stats["warm_hit_rate"] <= 1.0

    def test_unknown_op_is_an_error_response(self, daemon):
        with _client(daemon) as client:
            with pytest.raises(ServeError, match="unknown op"):
                client.request("frobnicate")
            assert client.ping()  # connection survives the error

    def test_malformed_route_requests(self, daemon):
        with _client(daemon) as client:
            with pytest.raises(ServeError, match="nets"):
                client.request("route")
            with pytest.raises(ServeError, match="nets"):
                client.request("route", nets=[])
            with pytest.raises(ServeError, match="pins"):
                client.request("route", nets=[{"name": "pinless"}])
            with pytest.raises(ServeError):
                # One pin: geometrically invalid, rejected by validation.
                client.request("route", nets=[{"pins": [[0, 0]]}])
            assert client.ping()

    def test_errors_do_not_poison_later_requests(self, daemon):
        with _client(daemon) as client:
            with pytest.raises(ServeError):
                client.request("route", nets=[{"pins": [[0, 0]]}])
            results = client.route(
                [random_net(4, rng=random.Random(63), name="after")]
            )
        assert results[0][1]


class TestRouteSelect:
    """The frontier point-selection hook over the wire."""

    def test_chosen_index_matches_policy_worker_side(self, daemon):
        nets = [
            random_net(4 + i % 3, rng=random.Random(70 + i), name=f"s{i}")
            for i in range(4)
        ]
        with _client(daemon) as client:
            plain = dict(client.route(nets))
            for policy, pick in (
                ("min_wirelength", lambda f: min(range(len(f)),
                                                 key=lambda k: (f[k][0], f[k][1]))),
                ("min_delay", lambda f: min(range(len(f)),
                                            key=lambda k: (f[k][1], f[k][0]))),
            ):
                for name, front, chosen in client.route_select(nets, policy):
                    assert 0 <= chosen < len(front)
                    # The daemon's selection agrees with a local replay
                    # of the same policy over the same front.
                    assert chosen == pick(front)
                    assert [(w, d) for w, d, _t in front] == [
                        (w, d) for w, d, _t in plain[name]
                    ]

    def test_select_with_trees_marks_choosable_tree(self, daemon):
        net = random_net(5, rng=random.Random(80), name="seltree")
        with _client(daemon) as client:
            [(name, front, chosen)] = client.route_select(
                [net], "budget:0.25", with_trees=True
            )
        assert name == net.name
        tree = front[chosen][2]
        assert tree is not None
        tree.validate()

    def test_plain_route_carries_no_chosen_field(self, daemon):
        net = random_net(4, rng=random.Random(81), name="nochoose")
        with _client(daemon) as client:
            response = client.request("route", nets=[net_to_payload(net)])
        assert "chosen" not in response["results"][0]

    def test_bad_policy_is_one_error_response(self, daemon):
        net = random_net(4, rng=random.Random(82), name="badpolicy")
        with _client(daemon) as client:
            with pytest.raises(ServeError, match="point policy"):
                client.route_select([net], "frobnicate")
            with pytest.raises(ServeError, match="string"):
                client.request(
                    "route", nets=[net_to_payload(net)], select=7
                )
            assert client.ping()  # connection survives both errors


@pytest.fixture(scope="module")
def telemetry_daemon(serve_dir):
    """A daemon with the HTTP telemetry sidecar on an ephemeral port."""
    config = ServeConfig(
        host="127.0.0.1",
        port=0,
        workers=2,
        store_path=str(serve_dir / "telemetry.sqlite"),
        metrics_port=0,
    )
    with ServerThread(config) as handle:
        yield handle.server


def _metrics_url(daemon, path="/metrics"):
    return f"http://127.0.0.1:{daemon.metrics_port}{path}"


def _http_get(url, timeout=10.0):
    """(status, body, content_type) for a GET, without raising on 4xx/5xx."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read().decode(), response.headers.get(
                "Content-Type", ""
            )
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode(), exc.headers.get("Content-Type", "")


def _wait_ready(daemon, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, _body, _ctype = _http_get(_metrics_url(daemon, "/readyz"))
        if status == 200:
            return
        time.sleep(0.05)
    raise TimeoutError("daemon never became ready")


class TestTelemetryEndpoint:
    def test_healthz_answers_immediately(self, telemetry_daemon):
        status, body, _ctype = _http_get(_metrics_url(telemetry_daemon, "/healthz"))
        assert status == 200
        assert body == "ok\n"

    def test_readyz_flips_after_pool_warmup(self, telemetry_daemon):
        # Ready means: every worker built its engine and attached the store.
        _wait_ready(telemetry_daemon)
        status, body, _ctype = _http_get(_metrics_url(telemetry_daemon, "/readyz"))
        assert status == 200 and body == "ready\n"
        assert telemetry_daemon.ready is True

    def test_unknown_path_is_404_and_post_is_405(self, telemetry_daemon):
        status, _body, _ctype = _http_get(_metrics_url(telemetry_daemon, "/nope"))
        assert status == 404
        request = urllib.request.Request(
            _metrics_url(telemetry_daemon), data=b"x", method="POST"
        )
        try:
            with urllib.request.urlopen(request, timeout=10.0) as response:
                status = response.status
        except urllib.error.HTTPError as exc:
            status = exc.code
        assert status == 405

    def test_metrics_is_valid_exposition(self, telemetry_daemon):
        _wait_ready(telemetry_daemon)
        with ServeClient(host="127.0.0.1", port=telemetry_daemon.tcp_port) as c:
            c.route([random_net(4, rng=random.Random(70), name="m0")])
        status, text, ctype = _http_get(_metrics_url(telemetry_daemon))
        assert status == 200
        assert ctype == METRICS_CONTENT_TYPE
        assert validate_exposition(text) == []
        expo = parse_prometheus_text(text)
        assert expo.value("repro_serve_ready") == 1.0
        assert expo.types["repro_serve_request_seconds"] == "histogram"

    def test_merged_tier_counts_equal_request_total(self, telemetry_daemon):
        """The acceptance criterion: per-tier histogram counts, merged,
        equal the daemon's total net count — the associative fold of the
        worker-measured durations loses nothing."""
        _wait_ready(telemetry_daemon)
        nets = [
            random_net(4 + i % 2, rng=random.Random(80 + i), name=f"t{i}")
            for i in range(5)
        ]
        with ServeClient(host="127.0.0.1", port=telemetry_daemon.tcp_port) as c:
            c.route(nets)
            c.route(nets)  # second pass lands in a warm tier
        _status, text, _ctype = _http_get(_metrics_url(telemetry_daemon))
        expo = parse_prometheus_text(text)
        nets_total = expo.value("repro_serve_nets_total")
        assert nets_total is not None and nets_total >= 10
        merged_inf = dict(
            (le, v) for le, _labels, v in expo.buckets("repro_serve_net_seconds")
        )["+Inf"]
        assert merged_inf == nets_total
        per_tier = sum(
            expo.value(f"repro_serve_net_seconds_{tier}_count") or 0.0
            for tier in ("memory", "store", "routed")
        )
        assert per_tier == nets_total

    def test_request_id_rides_response_and_results(self, telemetry_daemon):
        nets = [
            random_net(4, rng=random.Random(90 + i), name=f"r{i}")
            for i in range(3)
        ]
        from repro.serve.protocol import net_to_payload

        with ServeClient(host="127.0.0.1", port=telemetry_daemon.tcp_port) as c:
            response = c.request(
                "route", nets=[net_to_payload(n) for n in nets]
            )
        request_id = response["request_id"]
        assert request_id.startswith(telemetry_daemon.instance + "-")
        for result in response["results"]:
            assert result["request_id"] == request_id
            assert result["seconds"] >= 0.0

    def test_request_ids_disjoint_across_daemon_restarts(self, serve_dir):
        """Ids survive worker/daemon restarts without colliding: each
        incarnation prefixes its sequence with a fresh instance token."""
        from repro.serve.protocol import net_to_payload

        ids = []
        for _ in range(2):
            config = ServeConfig(host="127.0.0.1", port=0, workers=1)
            with ServerThread(config) as handle:
                with ServeClient(
                    host="127.0.0.1", port=handle.server.tcp_port
                ) as c:
                    net = random_net(4, rng=random.Random(91), name="same")
                    response = c.request("route", nets=[net_to_payload(net)])
                    ids.append(response["request_id"])
        assert ids[0] != ids[1]
        assert ids[0].split("-")[0] != ids[1].split("-")[0]

    def test_stats_reports_latency_and_slow_requests(self, telemetry_daemon):
        with ServeClient(host="127.0.0.1", port=telemetry_daemon.tcp_port) as c:
            c.route([random_net(4, rng=random.Random(92), name="lat")])
            stats = c.stats()
        assert stats["ready"] in (True, False)
        assert "slow_requests" in stats
        latency = stats["latency_ms"]
        assert set(latency) == {"request", "memory", "store", "routed"}
        assert latency["request"]["count"] >= 1
        assert latency["request"]["p50_ms"] > 0.0

    def test_slow_request_accounting(self, serve_dir):
        config = ServeConfig(
            host="127.0.0.1", port=0, workers=1, slow_request_seconds=0.0
        )
        with ServerThread(config) as handle:
            with ServeClient(
                host="127.0.0.1", port=handle.server.tcp_port
            ) as c:
                c.route([random_net(4, rng=random.Random(93), name="slow")])
                stats = c.stats()
        assert stats["slow_requests"] >= 1

    def test_fronts_bit_identical_with_telemetry_on_and_off(self, serve_dir):
        """Telemetry must observe, never perturb: identical fronts and
        trees whether the sidecar + worker telemetry is on or off."""
        nets = [
            random_net(5 + i % 2, rng=random.Random(94 + i), name=f"b{i}")
            for i in range(4)
        ]
        fronts = []
        for telemetry in (False, True):
            config = ServeConfig(
                host="127.0.0.1",
                port=0,
                workers=1,
                telemetry=telemetry,
                metrics_port=0 if telemetry else None,
            )
            with ServerThread(config) as handle:
                with ServeClient(
                    host="127.0.0.1", port=handle.server.tcp_port
                ) as c:
                    fronts.append(c.route(nets, with_trees=True))
        for (name_off, front_off), (name_on, front_on) in zip(*fronts):
            assert name_off == name_on
            assert [(w, d) for w, d, _ in front_off] == [
                (w, d) for w, d, _ in front_on
            ]
            for (_w, _d, t_off), (_w2, _d2, t_on) in zip(front_off, front_on):
                assert tuple((p.x, p.y) for p in t_off.points) == tuple(
                    (p.x, p.y) for p in t_on.points
                )
                assert tuple(t_off.parent) == tuple(t_on.parent)


class TestDaemonLifecycle:
    def test_shutdown_op_stops_the_server(self, serve_dir):
        config = ServeConfig(host="127.0.0.1", port=0, workers=1)
        handle = ServerThread(config).start()
        with ServeClient(host="127.0.0.1", port=handle.server.tcp_port) as c:
            c.shutdown()
        handle._thread.join(30)
        assert not handle._thread.is_alive()

    def test_config_requires_an_endpoint(self):
        from repro.serve import RouteServer

        with pytest.raises(ValueError, match="socket_path"):
            RouteServer(ServeConfig())

    def test_client_requires_exactly_one_endpoint(self):
        with pytest.raises(ValueError):
            ServeClient()
        with pytest.raises(ValueError):
            ServeClient(socket_path="/tmp/x.sock", host="127.0.0.1", port=1)

    def test_store_survives_daemon_restart(self, serve_dir):
        store = serve_dir / "restart.sqlite"
        net = random_net(5, rng=random.Random(64), name="persist")
        config = ServeConfig(
            host="127.0.0.1", port=0, workers=1, store_path=str(store)
        )
        with ServerThread(config) as first:
            with ServeClient(host="127.0.0.1", port=first.server.tcp_port) as c:
                c.route([net])
        assert store.exists()
        with ServerThread(config) as second:
            with ServeClient(host="127.0.0.1", port=second.server.tcp_port) as c:
                tiers = list(c.route_tiers([net]))
        assert tiers == ["store"]
