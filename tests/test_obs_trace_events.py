"""Tests for the structured event log and the Chrome-trace exporter.

Covers event emission from every instrumented pipeline stage
(``net_routed`` with its dispatch tier, ``dw_solve``, ``ks_solve``,
``eval_net``, ``batch_done``), JSONL flush/read round-trips, and the
structural validity of the exported Chrome trace — including the
cross-process merge from ``route_batch`` workers (distinct pid lanes).
"""

import json
import os
import random

import pytest

from repro import obs
from repro.core.batch import route_batch
from repro.core.pareto_ks import pareto_ks
from repro.core.patlabor import PatLabor
from repro.geometry.net import random_net


@pytest.fixture(autouse=True)
def clean_registry():
    obs.disable()
    obs.trace_disable()
    obs.events_disable()
    obs.reset()
    yield
    obs.disable()
    obs.trace_disable()
    obs.events_disable()
    obs.reset()


class TestEventLog:
    def test_disabled_log_records_nothing(self):
        obs.emit_event("net_routed", net="n0")
        assert obs.get_event_log().events() == []

    def test_emit_stamps_ts_and_pid(self):
        obs.events_enable()
        obs.emit_event("net_routed", net="n0", degree=5)
        (event,) = obs.get_event_log().events()
        assert event["kind"] == "net_routed"
        assert event["net"] == "n0" and event["degree"] == 5
        assert event["pid"] == os.getpid()
        assert event["ts"] > 0

    def test_events_sorted_by_timestamp(self):
        obs.events_enable()
        log = obs.get_event_log()
        # Extend with deliberately out-of-order timestamps (as arrives
        # from workers finishing at different times).
        log.extend([{"kind": "a", "ts": 2.0}, {"kind": "b", "ts": 1.0}])
        assert [e["ts"] for e in log.events()] == [1.0, 2.0]

    def test_flush_and_read_roundtrip(self, tmp_path):
        obs.events_enable()
        obs.emit_event("net_routed", net="n0")
        obs.emit_event("batch_done", nets=1)
        path = tmp_path / "events.jsonl"
        obs.flush_events(path)
        records = obs.read_events(path)
        assert [r["kind"] for r in records] == ["net_routed", "batch_done"]
        # Flush drains: a second flush appends nothing new.
        obs.flush_events(path)
        assert len(obs.read_events(path)) == 2

    def test_drain_clears_buffer(self):
        obs.events_enable()
        obs.emit_event("x")
        assert len(obs.drain_events()) == 1
        assert obs.get_event_log().events() == []


class TestPipelineEvents:
    def test_net_routed_carries_dispatch_tier(self):
        # net_routed is emitted by the engine's observability middleware,
        # which reads the tier off the wrapped router's dispatch_tier().
        from repro.engine import build_engine

        obs.events_enable()
        router = build_engine("patlabor")
        rng = random.Random(3)
        by_degree = {
            3: "closed_form",  # closed-form tier
            6: "dw",           # exact DP (no LUT in this router)
            12: "local_search",  # above lambda = 9
        }
        for degree in by_degree:
            router.route(random_net(degree, rng=rng, name=f"d{degree}"))
        routed = {
            e["net"]: e
            for e in obs.get_event_log().events()
            if e["kind"] == "net_routed"
        }
        assert set(routed) == {"d3", "d6", "d12"}
        for degree, tier in by_degree.items():
            event = routed[f"d{degree}"]
            assert event["tier"] == tier
            assert event["degree"] == degree
            assert event["front_size"] >= 1
            assert event["wall_s"] >= 0
            assert event["peak_rss_kb"] >= 0

    def test_dw_solve_events(self):
        obs.events_enable()
        PatLabor().route(random_net(6, rng=random.Random(4), name="n6"))
        solves = [
            e for e in obs.get_event_log().events() if e["kind"] == "dw_solve"
        ]
        assert len(solves) == 1
        assert solves[0]["degree"] == 6 and solves[0]["front_size"] >= 1

    def test_ks_solve_events(self):
        obs.events_enable()
        pareto_ks(random_net(11, rng=random.Random(5), name="n11"))
        solves = [
            e for e in obs.get_event_log().events() if e["kind"] == "ks_solve"
        ]
        assert len(solves) == 1
        assert solves[0]["net"] == "n11" and solves[0]["degree"] == 11

    def test_eval_net_events(self):
        from repro.eval.runner import compare_on_net

        obs.events_enable()
        net = random_net(5, rng=random.Random(6), name="e5")
        compare_on_net(
            net,
            {"patlabor": lambda n: PatLabor().route(n)},
            compute_exact=False,
        )
        (event,) = [
            e for e in obs.get_event_log().events() if e["kind"] == "eval_net"
        ]
        assert event["net"] == "e5"
        assert "patlabor" in event["runtimes"]

    def test_batch_done_event(self):
        obs.events_enable()
        nets = [random_net(5, rng=random.Random(7), name=f"b{i}") for i in range(3)]
        result = route_batch(nets, use_cache=True)
        (event,) = [
            e for e in obs.get_event_log().events() if e["kind"] == "batch_done"
        ]
        assert event["nets"] == len(nets)
        assert event["cache_hits"] == result.cache_hits
        assert event["cache_misses"] == result.cache_misses


class TestChromeTrace:
    def test_trace_records_spans_as_complete_events(self):
        obs.trace_enable()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        payload = obs.chrome_trace()
        assert obs.validate_chrome_trace(payload) == []
        xs = [e for e in payload["traceEvents"] if e.get("ph") == "X"]
        assert {e["args"]["path"] for e in xs} == {"outer", "outer/inner"}
        for e in xs:
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert e["pid"] == os.getpid()

    def test_write_chrome_trace_file(self, tmp_path):
        obs.trace_enable()
        with obs.span("s"):
            pass
        path = obs.write_chrome_trace(tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert obs.validate_chrome_trace(payload) == []
        assert payload["displayTimeUnit"] == "ms"

    def test_batch_trace_merges_worker_processes(self):
        """A parallel route_batch must produce a single structurally valid
        trace whose span events span distinct pid lanes (parent + workers)."""
        obs.trace_enable()
        rng = random.Random(11)
        nets = [random_net(6, rng=rng, name=f"p{i}") for i in range(8)]
        route_batch(nets, jobs=2, use_cache=False)
        payload = obs.chrome_trace()
        assert obs.validate_chrome_trace(payload) == []
        xs = [e for e in payload["traceEvents"] if e.get("ph") == "X"]
        assert xs, "parallel batch produced no span events"
        pids = {e["pid"] for e in xs}
        assert len(pids) >= 2, f"expected parent+worker pids, got {pids}"
        assert os.getpid() in pids
        # Timestamps are sorted onto one axis despite multiple processes.
        ts = [e["ts"] for e in xs]
        assert ts == sorted(ts)
        # Worker lanes carry the per-net routing spans.
        worker_paths = {
            e["args"]["path"] for e in xs if e["pid"] != os.getpid()
        }
        assert any("patlabor.route" in p for p in worker_paths)

    def test_batch_events_merge_worker_processes(self):
        obs.events_enable()
        rng = random.Random(12)
        nets = [random_net(5, rng=rng, name=f"w{i}") for i in range(6)]
        route_batch(nets, jobs=2, use_cache=False)
        events = obs.get_event_log().events()
        routed = [e for e in events if e["kind"] == "net_routed"]
        assert {e["net"] for e in routed} == {f"w{i}" for i in range(6)}
        assert any(e["pid"] != os.getpid() for e in routed)
        assert [e for e in events if e["kind"] == "batch_done"]

    def test_validator_flags_malformed_payloads(self):
        assert obs.validate_chrome_trace({"traceEvents": [{"ph": "Z"}]})
        assert obs.validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "ts": 1.0, "dur": -2.0,
                              "pid": 1, "tid": 1, "name": "x"}]}
        )
        assert obs.validate_chrome_trace(  # unbalanced B without E
            {"traceEvents": [{"ph": "B", "ts": 0.0, "pid": 1, "tid": 1,
                              "name": "x"}]}
        )
        assert obs.validate_chrome_trace(  # decreasing timestamps
            {"traceEvents": [
                {"ph": "X", "ts": 5.0, "dur": 1.0, "pid": 1, "tid": 1,
                 "name": "a"},
                {"ph": "X", "ts": 1.0, "dur": 1.0, "pid": 1, "tid": 1,
                 "name": "b"},
            ]}
        )
        assert obs.validate_chrome_trace({}) != []
