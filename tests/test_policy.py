"""Tests for the pin-selection policy and its trainer."""

import random

import pytest

from repro.baselines.rsmt import rsmt
from repro.core.policy import (
    DEFAULT_PARAMS,
    PolicyParams,
    SelectionPolicy,
    pin_features,
    random_selection,
    train_policy,
)
from repro.exceptions import PolicyError
from repro.geometry.net import Net, random_net
from repro.geometry.point import l1


class TestPolicyParams:
    def test_rejects_negative(self):
        with pytest.raises(PolicyError):
            PolicyParams(1.0, -0.1, 0.0, 0.0)

    def test_as_array(self):
        a = PolicyParams(1, 2, 3, 4).as_array()
        assert list(a) == [1, 2, 3, 4]


class TestFeatures:
    def test_first_selection_has_zero_compactness_terms(self):
        net = random_net(12, rng=random.Random(1))
        tree = rsmt(net)
        f1, f2, f3, f4 = pin_features(net, tree, 0, [], tree.sink_delays())
        assert f3 == 0.0 and f4 == 0.0
        assert f1 >= 0 and f2 >= f1 - 1e-9  # tree path >= L1 distance

    def test_features_scale_free(self):
        net = random_net(10, rng=random.Random(2))
        tree = rsmt(net)
        big = net.scaled(100.0)
        big_tree = rsmt(big)
        d, bd = tree.sink_delays(), big_tree.sink_delays()
        for i in range(3):
            f = pin_features(net, tree, i, [0], d)
            g = pin_features(big, big_tree, i, [0], bd)
            for a, b in zip(f, g):
                assert abs(a - b) < 1e-6

    def test_compactness_terms_positive_after_selection(self):
        net = random_net(12, rng=random.Random(3))
        tree = rsmt(net)
        _, _, f3, f4 = pin_features(net, tree, 2, [5, 7], tree.sink_delays())
        assert f3 > 0 and f4 > 0


class TestSelection:
    def test_selects_k_distinct(self):
        net = random_net(20, rng=random.Random(4))
        sel = SelectionPolicy().select(net, rsmt(net), 7)
        assert len(sel) == 7
        assert len(set(sel)) == 7

    def test_selects_all_when_k_exceeds_sinks(self):
        net = random_net(5, rng=random.Random(5))
        sel = SelectionPolicy().select(net, rsmt(net), 10)
        assert sorted(sel) == [0, 1, 2, 3]

    def test_first_pick_is_far_from_source(self):
        """With the shipped weights (a1, a2 > 0), the first selected pin
        must be a deep/far one — the delay-critical region."""
        net = random_net(15, rng=random.Random(6))
        tree = rsmt(net)
        sel = SelectionPolicy().select(net, tree, 3)
        delays = tree.sink_delays()
        assert delays[sel[0]] >= sorted(delays)[len(delays) // 2]

    def test_params_for_nearest_degree(self):
        policy = SelectionPolicy({10: PolicyParams(1, 1, 0, 0), 100: PolicyParams(0, 1, 1, 1)})
        assert policy.params_for(12) == policy.params[10]
        assert policy.params_for(90) == policy.params[100]
        assert policy.params_for(10) == policy.params[10]

    def test_empty_params_raises(self):
        with pytest.raises(PolicyError):
            SelectionPolicy({}).params_for(10)

    def test_exploration_rng_changes_selection_sometimes(self):
        net = random_net(20, rng=random.Random(8))
        tree = rsmt(net)
        base = SelectionPolicy().select(net, tree, 5)
        seen_different = False
        for seed in range(10):
            sel = SelectionPolicy(rng=random.Random(seed)).select(net, tree, 5)
            if sel != base:
                seen_different = True
                break
        assert seen_different

    def test_random_selection_valid(self):
        net = random_net(15, rng=random.Random(9))
        sel = random_selection(net, 6, random.Random(1))
        assert len(sel) == 6 and len(set(sel)) == 6
        assert all(0 <= i < 14 for i in sel)


class TestTraining:
    def test_train_policy_returns_nonnegative_params(self):
        params = train_policy(
            degrees=(10,), nets_per_degree=2, rollouts=4, lam=6, seed=1
        )
        assert 10 in params
        p = params[10]
        assert min(p.a1, p.a2, p.a3, p.a4) >= 0

    def test_curriculum_produces_params_per_degree(self):
        params = train_policy(
            degrees=(10, 12), nets_per_degree=2, rollouts=3, lam=6, seed=2
        )
        assert set(params) == {10, 12}

    def test_default_params_cover_training_range(self):
        assert min(DEFAULT_PARAMS) == 10
        assert max(DEFAULT_PARAMS) == 100
